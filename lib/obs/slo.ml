type spec = {
  name : string;
  threshold_ns : int;
  objective : float;
  window_ns : int;
  fast_windows : int;
  slow_windows : int;
  burn_threshold : float;
}

let default_spec =
  {
    name = "p99_250us";
    threshold_ns = 250_000;
    objective = 0.99;
    window_ns = 1_000_000;
    fast_windows = 3;
    slow_windows = 30;
    burn_threshold = 4.0;
  }

let validate s =
  if s.name = "" then invalid_arg "Slo: empty name";
  if s.threshold_ns <= 0 then invalid_arg "Slo: threshold_ns must be positive";
  if s.objective <= 0.0 || s.objective >= 1.0 then
    invalid_arg "Slo: objective outside (0,1)";
  if s.window_ns <= 0 then invalid_arg "Slo: window_ns must be positive";
  if s.fast_windows < 1 then invalid_arg "Slo: fast_windows must be >= 1";
  if s.slow_windows < s.fast_windows then
    invalid_arg "Slo: slow_windows must be >= fast_windows";
  if s.burn_threshold <= 0.0 then invalid_arg "Slo: burn_threshold must be positive"

type t = {
  sp : spec;
  budget : float; (* 1 - objective *)
  (* open window *)
  mutable cur_good : int;
  mutable cur_bad : int;
  (* trailing ring of the last slow_windows closed windows *)
  ring_good : int array;
  ring_bad : int array;
  mutable head : int; (* next slot to overwrite *)
  mutable filled : int; (* closed windows currently in the ring *)
  (* running sums over the fast / slow trailing windows *)
  mutable fast_good : int;
  mutable fast_bad : int;
  mutable slow_good : int;
  mutable slow_bad : int;
  (* cumulative *)
  mutable windows : int;
  mutable total : int;
  mutable bad : int;
  (* alert state *)
  mutable burn_on : bool;
  mutable static_on : bool;
  mutable burn_alerts : int;
  mutable first_burn : int option;
  mutable first_static : int option;
  mutable max_fast_burn : float;
}

let create sp =
  validate sp;
  {
    sp;
    budget = 1.0 -. sp.objective;
    cur_good = 0;
    cur_bad = 0;
    ring_good = Array.make sp.slow_windows 0;
    ring_bad = Array.make sp.slow_windows 0;
    head = 0;
    filled = 0;
    fast_good = 0;
    fast_bad = 0;
    slow_good = 0;
    slow_bad = 0;
    windows = 0;
    total = 0;
    bad = 0;
    burn_on = false;
    static_on = false;
    burn_alerts = 0;
    first_burn = None;
    first_static = None;
    max_fast_burn = 0.0;
  }

let spec t = t.sp

let observe t ~latency_ns =
  if latency_ns <= t.sp.threshold_ns then t.cur_good <- t.cur_good + 1
  else t.cur_bad <- t.cur_bad + 1

let burn_of t ~good ~bad =
  let n = good + bad in
  if n = 0 then 0.0 else float_of_int bad /. float_of_int n /. t.budget

type status = {
  at_ns : int;
  window_good : int;
  window_bad : int;
  fast_burn : float;
  slow_burn : float;
  budget_consumed : float;
  burn_firing : bool;
  static_firing : bool;
}

let roll t ~now =
  let g = t.cur_good and b = t.cur_bad in
  t.cur_good <- 0;
  t.cur_bad <- 0;
  t.windows <- t.windows + 1;
  t.total <- t.total + g + b;
  t.bad <- t.bad + b;
  (* evict the window leaving the slow ring *)
  if t.filled = t.sp.slow_windows then begin
    t.slow_good <- t.slow_good - t.ring_good.(t.head);
    t.slow_bad <- t.slow_bad - t.ring_bad.(t.head)
  end;
  (* evict the window leaving the fast trailing sum: the one inserted
     fast_windows insertions ago, once that many are closed *)
  if t.filled >= t.sp.fast_windows then begin
    let i =
      (t.head - t.sp.fast_windows + t.sp.slow_windows) mod t.sp.slow_windows
    in
    t.fast_good <- t.fast_good - t.ring_good.(i);
    t.fast_bad <- t.fast_bad - t.ring_bad.(i)
  end;
  t.ring_good.(t.head) <- g;
  t.ring_bad.(t.head) <- b;
  t.head <- (t.head + 1) mod t.sp.slow_windows;
  if t.filled < t.sp.slow_windows then t.filled <- t.filled + 1;
  t.fast_good <- t.fast_good + g;
  t.fast_bad <- t.fast_bad + b;
  t.slow_good <- t.slow_good + g;
  t.slow_bad <- t.slow_bad + b;
  let fast_burn = burn_of t ~good:t.fast_good ~bad:t.fast_bad in
  let slow_burn = burn_of t ~good:t.slow_good ~bad:t.slow_bad in
  if fast_burn > t.max_fast_burn then t.max_fast_burn <- fast_burn;
  let firing = fast_burn >= t.sp.burn_threshold && slow_burn >= t.sp.burn_threshold in
  if firing && not t.burn_on then begin
    t.burn_alerts <- t.burn_alerts + 1;
    if t.first_burn = None then t.first_burn <- Some now
  end;
  t.burn_on <- firing;
  let budget_consumed =
    if t.total = 0 then 0.0
    else float_of_int t.bad /. float_of_int t.total /. t.budget
  in
  let static_firing = budget_consumed >= 1.0 in
  if static_firing && not t.static_on && t.first_static = None then
    t.first_static <- Some now;
  t.static_on <- static_firing;
  {
    at_ns = now;
    window_good = g;
    window_bad = b;
    fast_burn;
    slow_burn;
    budget_consumed;
    burn_firing = firing;
    static_firing;
  }

type report = {
  r_name : string;
  windows : int;
  total : int;
  bad : int;
  budget_consumed : float;
  max_fast_burn : float;
  burn_alerts : int;
  first_burn_alert_ns : int option;
  first_static_alert_ns : int option;
}

let report (t : t) =
  let total = t.total + t.cur_good + t.cur_bad in
  let bad = t.bad + t.cur_bad in
  {
    r_name = t.sp.name;
    windows = t.windows;
    total;
    bad;
    budget_consumed =
      (if total = 0 then 0.0
       else float_of_int bad /. float_of_int total /. t.budget);
    max_fast_burn = t.max_fast_burn;
    burn_alerts = t.burn_alerts;
    first_burn_alert_ns = t.first_burn;
    first_static_alert_ns = t.first_static;
  }

let pp_report ppf r =
  let pp_first ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some ns -> Format.fprintf ppf "%.3f ms" (float_of_int ns /. 1e6)
  in
  Format.fprintf ppf
    "slo %s: windows=%d total=%d bad=%d budget=%.2f%% burn-alerts=%d \
     (first %a) static-first %a max-fast-burn=%.2f"
    r.r_name r.windows r.total r.bad (100.0 *. r.budget_consumed) r.burn_alerts
    pp_first r.first_burn_alert_ns pp_first r.first_static_alert_ns
    r.max_fast_burn
