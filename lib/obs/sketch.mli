(** Mergeable streaming quantile sketch (DDSketch-style).

    {!Stat.Summary} answers "what were the quantiles of the whole run";
    live telemetry needs the same answer {e per window, per core}, with
    cheap reset and cheap aggregation.  This sketch buckets positive
    values on a geometric grid with ratio [gamma = (1+alpha)/(1-alpha)],
    so any reported quantile is within relative error [alpha] of the
    exact empirical quantile of the observed multiset — the guarantee
    the qcheck property in [test_obs] verifies against a sorted-sample
    oracle.

    Storage is one fixed [int array] of [max_bins] buckets plus a few
    scalars: constant memory, allocation-free [add], O(bins) [quantile].
    Two sketches with the same geometry merge by bucket-wise addition
    ({!merge_into}), and merging is {e exact}: a merged sketch is
    indistinguishable from one that observed the concatenated stream.
    The per-core -> global aggregation of {!Preemptible.Telemetry}
    leans on exactly that property.

    Values are latencies in nanoseconds: non-positive values land in a
    dedicated zero bucket, values below 1 ns clamp to the first bucket,
    and values above the grid ceiling clamp to the last bucket (the
    exact tracked maximum keeps the top quantiles honest). *)

type t

val create : ?alpha:float -> ?max_bins:int -> unit -> t
(** [create ()] builds an empty sketch with relative accuracy [alpha]
    (default 0.01) and [max_bins] buckets (default 2048 — with the
    default alpha the grid spans 1 ns to beyond 10^17 ns).  Raises
    [Invalid_argument] unless [0 < alpha < 1] and [max_bins >= 1]. *)

val alpha : t -> float

val add : t -> float -> unit
(** Record one observation.  O(1), allocation-free. *)

val count : t -> int

val sum : t -> float
(** Sum of observations (exact, for mean/throughput arithmetic). *)

val min_value : t -> float
(** Exact smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Exact largest observation; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]: an estimate within relative error
    [alpha] of the exact empirical q-quantile (nearest-rank, the same
    convention as the test oracle).  Raises [Invalid_argument] when the
    sketch is empty or [q] is outside [0,1]. *)

val quantile_opt : t -> float -> float option
(** Like {!quantile}; [None] when the sketch is empty. *)

val merge_into : dst:t -> src:t -> unit
(** Bucket-wise merge; [src] is left untouched.  Raises
    [Invalid_argument] when the two sketches' geometry (alpha,
    max_bins) differs. *)

val clear : t -> unit
(** Empty the sketch in place (no allocation) — window reset. *)
