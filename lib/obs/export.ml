let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One Perfetto "process" per category keeps worker tracks (Sched) from
   colliding with receiver tracks (Uipi) that share small integer ids. *)
let pid_of_cat c = 1 + List.length (List.filter (fun x -> x < c) Trace.all_cats)

let perfetto trace =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let first = ref true in
  let emit_sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '\n'
  in
  (* Name each category's process so the Perfetto UI groups tracks. *)
  let cats_seen = Hashtbl.create 8 in
  Trace.iter trace (fun e ->
      if not (Hashtbl.mem cats_seen e.Trace.cat) then begin
        Hashtbl.add cats_seen e.Trace.cat ();
        emit_sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
             (pid_of_cat e.Trace.cat)
             (json_escape (Trace.cat_name e.Trace.cat)))
      end;
      let pid = pid_of_cat e.Trace.cat in
      let ts = Printf.sprintf "%.3f" (float_of_int e.Trace.ts /. 1000.0) in
      let name = json_escape e.Trace.name in
      let cat = Trace.cat_name e.Trace.cat in
      emit_sep ();
      match e.Trace.kind with
      | Trace.Span_begin ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"B\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"arg\":%d}}"
             name cat ts pid e.Trace.track e.Trace.arg)
      | Trace.Span_end ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"E\",\"ts\":%s,\"pid\":%d,\"tid\":%d}" name
             cat ts pid e.Trace.track)
      | Trace.Instant ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"arg\":%d}}"
             name cat ts pid e.Trace.track e.Trace.arg)
      | Trace.Counter ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"%s\":%d}}"
             name cat ts pid e.Trace.track name e.Trace.arg));
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let kind_name = function
  | Trace.Span_begin -> "B"
  | Trace.Span_end -> "E"
  | Trace.Instant -> "I"
  | Trace.Counter -> "C"

let csv trace =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "ts_ns,kind,cat,name,track,arg\n";
  Trace.iter trace (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s,%d,%d\n" e.Trace.ts (kind_name e.Trace.kind)
           (Trace.cat_name e.Trace.cat) e.Trace.name e.Trace.track e.Trace.arg));
  Buffer.contents buf

let to_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let perfetto_to_file trace ~path = to_file path (perfetto trace)
let csv_to_file trace ~path = to_file path (csv trace)

(* Prometheus text exposition (0.0.4).  Names must match
   [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted registry names mangle with
   dots -> underscores under an lp_ prefix. *)
let prom_name name =
  let b = Buffer.create (String.length name + 3) in
  Buffer.add_string b "lp_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_float v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let prometheus snap =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      match v with
      | Metrics.Counter c ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" n c)
      | Metrics.Gauge g ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" n g)
      | Metrics.Histogram r ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
        List.iter
          (fun (q, value) ->
            Buffer.add_string buf
              (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n q (prom_float value)))
          [
            ("0.5", r.Stat.Summary.p50);
            ("0.9", r.Stat.Summary.p90);
            ("0.99", r.Stat.Summary.p99);
            ("0.999", r.Stat.Summary.p999);
          ];
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %s\n" n
             (prom_float (r.Stat.Summary.mean *. float_of_int r.Stat.Summary.count)));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n r.Stat.Summary.count))
    snap;
  Buffer.contents buf

let prometheus_to_file snap ~path = to_file path (prometheus snap)
