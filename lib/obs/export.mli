(** Trace exporters.

    {!perfetto} renders the ring as Chrome/Perfetto [trace_event] JSON
    (loadable in [ui.perfetto.dev] or [chrome://tracing]): spans become
    ["B"]/["E"] duration events, instants ["i"], counter samples ["C"].
    Timestamps are emitted in microseconds with nanosecond precision
    ([displayTimeUnit: "ns"]); tracks map to thread ids under one
    process per category.

    {!csv} renders the same events as a flat
    [ts_ns,kind,cat,name,track,arg] table for ad-hoc analysis. *)

val perfetto : Trace.t -> string

val csv : Trace.t -> string

val perfetto_to_file : Trace.t -> path:string -> unit

val csv_to_file : Trace.t -> path:string -> unit
