(** Trace exporters.

    {!perfetto} renders the ring as Chrome/Perfetto [trace_event] JSON
    (loadable in [ui.perfetto.dev] or [chrome://tracing]): spans become
    ["B"]/["E"] duration events, instants ["i"], counter samples ["C"].
    Timestamps are emitted in microseconds with nanosecond precision
    ([displayTimeUnit: "ns"]); tracks map to thread ids under one
    process per category.

    {!csv} renders the same events as a flat
    [ts_ns,kind,cat,name,track,arg] table for ad-hoc analysis.

    {!prometheus} renders a {!Metrics.snapshot} in Prometheus text
    exposition format (version 0.0.4): counters and gauges as single
    samples, histograms as summaries (quantile-labelled samples plus
    [_sum]/[_count]).  Metric names are mangled to the Prometheus
    alphabet (dots become underscores) under an [lp_] prefix. *)

val perfetto : Trace.t -> string

val csv : Trace.t -> string

val perfetto_to_file : Trace.t -> path:string -> unit

val csv_to_file : Trace.t -> path:string -> unit

val prometheus : Metrics.snapshot -> string

val prometheus_to_file : Metrics.snapshot -> path:string -> unit
