type t = Wall | Virtual of int Atomic.t

let wall () = Wall
let virtual_ () = Virtual (Atomic.make 0)

let now_ns = function
  | Wall -> int_of_float (Unix.gettimeofday () *. 1e9)
  | Virtual cell -> Atomic.get cell

let advance t d =
  match t with
  | Wall -> invalid_arg "Deadline_clock.advance: cannot advance the wall clock"
  | Virtual cell ->
    if d < 0 then invalid_arg "Deadline_clock.advance: negative amount";
    ignore (Atomic.fetch_and_add cell d)

let is_virtual = function Wall -> false | Virtual _ -> true
