(** Lock-free growable Chase-Lev work-stealing deque.

    Single-owner, multi-thief: exactly one domain (the owner) may call
    {!push} and {!pop}; any domain may call {!steal}.  The owner works
    LIFO at the bottom (cache-warm continuations first); thieves take
    FIFO from the top (oldest work, the classic work-stealing split).

    The buffer grows geometrically when full, so pushes never block and
    never drop.  [steal] returning [None] means "empty or lost a race";
    victims are cheap to retry or skip. *)

type 'a t

val create : unit -> 'a t
(** Initial capacity 16 slots. *)

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom.  Grows (amortised O(1)) when full. *)

val pop : 'a t -> 'a option
(** Owner only: remove the most recently pushed element (LIFO), or
    [None] when empty. *)

val steal : 'a t -> 'a option
(** Any domain: remove the oldest element (FIFO).  [None] means empty
    {e or} a concurrent pop/steal won the race — callers treat both as
    "try elsewhere". *)

val size : 'a t -> int
(** Snapshot of the element count — racy, advisory only. *)

val is_empty : 'a t -> bool
(** [size t = 0] — racy, advisory only. *)

val capacity : 'a t -> int
(** Current buffer capacity (for tests of the grow path). *)
