type _ Effect.t += Yield : unit Effect.t | Sleep_until : int -> unit Effect.t

type timer_mode = Inline | Timer_domain | External

type t = {
  clk : Deadline_clock.t;
  deadline : int Atomic.t; (* absolute ns; 0 = disarmed *)
  flag : bool Atomic.t;
  mutable quantum : int;
  timer : timer_mode;
  mutable timer_domain : unit Domain.t option;
  alive : bool Atomic.t;
  mutable in_fn : bool;
  mutable on_preempt : unit -> unit;
  mutable total_preemptions : int;
  trace : Obs.Trace.t option;
}

type 'a state =
  | Running_state
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Completed of 'a
  | Failed of exn

type 'a fn = {
  mutable rt : t;
  mutable st : 'a state;
  mutable preempts : int;
  mutable blocked_until : int option;
  fn_quantum : int option;
}

(* The dedicated timer domain dozes when disarmed and sleeps toward a
   far deadline (capped so shutdown stays prompt), spinning only inside
   the last stretch for precision — a pure busy loop would starve the
   worker on small machines. *)
let doze_s = 50e-6
let max_sleep_s = 200e-6
let spin_window_ns = 100_000

let timer_loop t () =
  while Atomic.get t.alive do
    let d = Atomic.get t.deadline in
    if d = 0 then Unix.sleepf doze_s
    else begin
      let now = Deadline_clock.now_ns t.clk in
      if now >= d then begin
        (* One store into the worker's flag — the SENDUIPI analogue. *)
        Atomic.set t.deadline 0;
        Atomic.set t.flag true
      end
      else if d - now > spin_window_ns then
        Unix.sleepf (Float.min max_sleep_s (float_of_int (d - now - spin_window_ns) *. 1e-9))
      else Domain.cpu_relax ()
    end
  done

let create ?(quantum_ns = 1_000_000) ?(timer = Inline) ?trace ~clock () =
  if quantum_ns <= 0 then invalid_arg "Fiber.create: quantum must be positive";
  if timer = Timer_domain && Deadline_clock.is_virtual clock then
    invalid_arg "Fiber.create: a timer domain cannot watch a virtual clock";
  let t =
    {
      clk = clock;
      deadline = Atomic.make 0;
      flag = Atomic.make false;
      quantum = quantum_ns;
      timer;
      timer_domain = None;
      alive = Atomic.make true;
      in_fn = false;
      on_preempt = ignore;
      total_preemptions = 0;
      trace;
    }
  in
  if timer = Timer_domain then t.timer_domain <- Some (Domain.spawn (timer_loop t));
  t

let shutdown t =
  if Atomic.get t.alive then begin
    Atomic.set t.alive false;
    match t.timer_domain with
    | Some d ->
      Domain.join d;
      t.timer_domain <- None
    | None -> ()
  end

let alive t = Atomic.get t.alive
let clock t = t.clk
let quantum_ns t = t.quantum

let set_quantum_ns t q =
  if q <= 0 then invalid_arg "Fiber.set_quantum_ns: quantum must be positive";
  t.quantum <- q

let tr t ~name ~arg =
  match t.trace with
  | Some trace -> Obs.Trace.instant trace Obs.Trace.Fiber ~name ~track:0 ~arg
  | None -> ()

let arm t q =
  Atomic.set t.flag false;
  Atomic.set t.deadline (Deadline_clock.now_ns t.clk + q);
  tr t ~name:"fiber.arm" ~arg:q

let disarm t =
  Atomic.set t.deadline 0;
  Atomic.set t.flag false

let deadline_ns t = Atomic.get t.deadline

let poll_slot t ~now_ns =
  let d = Atomic.get t.deadline in
  if d <> 0 && now_ns >= d then begin
    Atomic.set t.deadline 0;
    Atomic.set t.flag true;
    true
  end
  else false

(* Run a slice of [fn] (either its first activation or a continuation)
   with the deadline armed.  Restores runtime state even if the fiber
   body raises. *)
let exec fn slice =
  let t = fn.rt in
  if t.in_fn then invalid_arg "Fiber: a function is already running on this runtime";
  t.in_fn <- true;
  t.on_preempt <- (fun () -> fn.preempts <- fn.preempts + 1);
  fn.blocked_until <- None;
  arm t (match fn.fn_quantum with Some q -> q | None -> t.quantum);
  Fun.protect
    ~finally:(fun () ->
      t.in_fn <- false;
      t.on_preempt <- ignore;
      disarm t)
    slice

let handler (fn : _ fn) =
  {
    Effect.Deep.retc = (fun () -> ());
    exnc = (fun e -> fn.st <- Failed e; raise e);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Yield ->
          Some
            (fun (k : (b, unit) Effect.Deep.continuation) -> fn.st <- Suspended k)
        | Sleep_until wake ->
          Some
            (fun (k : (b, unit) Effect.Deep.continuation) ->
              fn.st <- Suspended k;
              fn.blocked_until <- Some wake)
        | _ -> None);
  }

let fn_launch t ?quantum_ns f =
  (match quantum_ns with
  | Some q when q <= 0 -> invalid_arg "Fiber.fn_launch: quantum must be positive"
  | Some _ | None -> ());
  let fn =
    { rt = t; st = Running_state; preempts = 0; blocked_until = None; fn_quantum = quantum_ns }
  in
  let body () = fn.st <- Completed (f ()) in
  exec fn (fun () -> Effect.Deep.match_with body () (handler fn));
  fn

let fn_resume fn =
  match fn.st with
  | Suspended k ->
    fn.st <- Running_state;
    exec fn (fun () -> Effect.Deep.continue k ())
  | Running_state -> invalid_arg "Fiber.fn_resume: function is running"
  | Completed _ | Failed _ -> invalid_arg "Fiber.fn_resume: function already completed"

let fn_resume_on t fn =
  (* Rebind the continuation to another runtime (work stealing): the
     thief's deadline slot is armed for the next slice.  The body must
     locate its runtime dynamically (e.g. Pool.checkpoint via DLS), not
     capture the launch-time one. *)
  fn.rt <- t;
  fn_resume fn

let fn_completed fn =
  match fn.st with Completed _ | Failed _ -> true | Running_state | Suspended _ -> false

let result fn = match fn.st with Completed r -> Some r | _ -> None
let preempt_count fn = fn.preempts
let blocked_until fn = fn.blocked_until

let checkpoint t =
  if t.in_fn then begin
    let fire =
      match t.timer with
      | Inline ->
        let d = Atomic.get t.deadline in
        d <> 0 && Deadline_clock.now_ns t.clk >= d
      | Timer_domain | External -> Atomic.get t.flag
    in
    if fire then begin
      disarm t;
      t.total_preemptions <- t.total_preemptions + 1;
      tr t ~name:"fiber.preempt" ~arg:t.total_preemptions;
      t.on_preempt ();
      Effect.perform Yield
    end
  end

let yield t =
  if not t.in_fn then invalid_arg "Fiber.yield: no function is running";
  tr t ~name:"fiber.yield" ~arg:0;
  Effect.perform Yield

let sleep_until t ~wake_ns =
  if not t.in_fn then invalid_arg "Fiber.sleep_until: no function is running";
  tr t ~name:"fiber.sleep" ~arg:wake_ns;
  Effect.perform (Sleep_until wake_ns)

let preemptions t = t.total_preemptions
