(* Real-time request executor: replay a pre-generated open-loop
   schedule (arrival offset, service time, class) on a {!Pool} and
   measure wall-clock latency distributions — the "real" side of the
   sim-vs-real cross-validation.

   The dispatcher (calling domain) sleeps until each request's intended
   arrival, then submits it; latency is measured from the intended
   arrival, not the submit instant, so dispatcher lateness counts as
   queueing exactly as it would for an open-loop client.  Service is
   executed as a calibrated busy-spin in ~20 us chunks with a pool
   safepoint between chunks: suspended time is not counted (only active
   chunks burn the budget), matching the simulator's notion of service
   time as CPU time. *)

type item = { at_ns : int; service_ns : int; lc : bool }

type result = {
  offered : int;
  completed : int;
  failed : int;
  preemptions : int;
  steals : int;
  wall_ns : int;  (** dispatch start to last completion *)
  per_worker : int array;  (** jobs completed per worker domain *)
  all : Stat.Summary.report;
  lc : Stat.Summary.report option;
  be : Stat.Summary.report option;
}

let chunk_ns = 20_000

(* Burn [ns] of active CPU time in chunk-sized slices, checkpointing
   between slices.  The wall clock ticks in 1 us steps (gettimeofday),
   so each chunk overshoots by roughly a tick on average; 20 us chunks
   keep that granularity error around 5% while still hitting a
   safepoint ~12x per smallest practical quantum. *)
let spin clk ns =
  let remaining = ref ns in
  while !remaining > 0 do
    let c = min !remaining chunk_ns in
    let t0 = Deadline_clock.now_ns clk in
    while Deadline_clock.now_ns clk - t0 < c do
      ()
    done;
    remaining := !remaining - c;
    Pool.checkpoint ()
  done

let run ~workers ?quantum_ns ?(warmup_ns = 0) (schedule : item array) =
  let schedule = Array.copy schedule in
  Array.sort (fun a b -> compare a.at_ns b.at_ns) schedule;
  Array.iter
    (fun it ->
      if it.at_ns < 0 || it.service_ns < 0 then
        invalid_arg "Sched.run: negative arrival or service time")
    schedule;
  let pool = Pool.create ?quantum_ns ~workers () in
  let clk = Pool.clock pool in
  let m = Mutex.create () in
  let s_all = Stat.Summary.create () in
  let s_lc = Stat.Summary.create () in
  let s_be = Stat.Summary.create () in
  let record it latency_ns =
    if it.at_ns >= warmup_ns then begin
      Mutex.lock m;
      Stat.Summary.record s_all (float_of_int latency_ns);
      Stat.Summary.record (if it.lc then s_lc else s_be) (float_of_int latency_ns);
      Mutex.unlock m
    end
  in
  let t0 = Deadline_clock.now_ns clk in
  Array.iter
    (fun it ->
      let target = t0 + it.at_ns in
      let gap = target - Deadline_clock.now_ns clk in
      if gap > 0 then Unix.sleepf (float_of_int gap *. 1e-9);
      Pool.submit pool ~lc:it.lc (fun () ->
          spin clk it.service_ns;
          record it (Deadline_clock.now_ns clk - target)))
    schedule;
  Pool.drain pool;
  let wall_ns = Deadline_clock.now_ns clk - t0 in
  let st = Pool.stats pool in
  Pool.shutdown pool;
  {
    offered = Array.length schedule;
    completed = Array.fold_left ( + ) 0 st.Pool.executed;
    failed = st.Pool.failed;
    preemptions = st.Pool.preemptions;
    steals = Array.fold_left ( + ) 0 st.Pool.stolen;
    wall_ns;
    per_worker = st.Pool.executed;
    all = Stat.Summary.report s_all;
    lc = Stat.Summary.report_opt s_lc;
    be = Stat.Summary.report_opt s_be;
  }

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>rt: offered %d  completed %d  failed %d  preemptions %d  steals %d  wall \
     %.1f ms@,per-worker %s@,all %a@,lc  %a@,be  %a@]"
    r.offered r.completed r.failed r.preemptions r.steals
    (float_of_int r.wall_ns /. 1e6)
    (String.concat "/" (Array.to_list (Array.map string_of_int r.per_worker)))
    Stat.Summary.pp_report_us r.all Stat.Summary.pp_report_opt_us r.lc
    Stat.Summary.pp_report_opt_us r.be
