(** Real-time open-loop request executor over {!Pool} — the "real"
    half of sim-vs-real cross-validation.

    Callers pre-generate a schedule (typically from a scenario spec via
    [Scenario.rt_schedule], using the same arrival/source samplers the
    simulator lowers to) and replay it against real domains under wall
    time. *)

type item = {
  at_ns : int;  (** intended arrival, ns offset from dispatch start *)
  service_ns : int;  (** active CPU time the request burns *)
  lc : bool;  (** latency-critical (vs best-effort) *)
}

type result = {
  offered : int;
  completed : int;
  failed : int;
  preemptions : int;
  steals : int;
  wall_ns : int;  (** dispatch start to last completion *)
  per_worker : int array;  (** jobs completed per worker domain *)
  all : Stat.Summary.report;  (** latency, ns (warmup excluded) *)
  lc : Stat.Summary.report option;
  be : Stat.Summary.report option;
}

val run : workers:int -> ?quantum_ns:int -> ?warmup_ns:int -> item array -> result
(** Replay [schedule] on a fresh pool of [workers] domains and tear the
    pool down.  Latency is measured from each item's {e intended}
    arrival ([at_ns]), so dispatcher lateness counts as queueing, as it
    would for an open-loop client.  Items with [at_ns < warmup_ns]
    execute but are excluded from the latency reports.  Omitting
    [quantum_ns] disables preemption.  Raises [Invalid_argument] on
    negative arrival or service times. *)

val pp_result : Format.formatter -> result -> unit
