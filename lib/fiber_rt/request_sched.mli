(** A centralized-FCFS-with-preemption request scheduler over the
    Fiber API — the paper's Sec V-C policy #1, running {e real} code.

    Incoming requests are preemptible functions; fresh requests have
    preemptive priority, preempted ones park in a long queue and resume
    when no fresh work is pending (exactly the scheduler the simulator's
    {!Preemptible.Server} models, here executing actual OCaml under the
    runtime's quantum). *)

type t

val create : Fiber.t -> t

type request
(** A submitted request. *)

val submit : t -> ?quantum_ns:int -> (unit -> unit) -> request
(** Enqueue work (runs when the scheduler reaches it; [quantum_ns]
    overrides the runtime default for this request). *)

val completed : request -> bool

val preempt_count : request -> int

type stats = {
  completed : int;
  preemptions : int;
  scheduler_passes : int;
  max_fresh_queue : int;
  max_long_queue : int;
}

val run_until_idle : t -> stats
(** Drive the scheduler until every submitted request completed.
    Requests submitted from inside running requests are served too.
    Cumulative across calls. *)
