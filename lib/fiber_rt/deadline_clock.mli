(** Clocks for the real-execution fiber runtime.

    The wall clock backs the live runtime (the quickstart example); the
    virtual clock makes runtime behaviour fully deterministic for tests:
    fiber code advances it explicitly, standing in for the passage of
    execution time. *)

type t

val wall : unit -> t
(** Monotonic-enough wall time in nanoseconds. *)

val virtual_ : unit -> t
(** Starts at 0; advances only via {!advance}. *)

val now_ns : t -> int

val advance : t -> int -> unit
(** Move a virtual clock forward. Raises [Invalid_argument] on a wall
    clock or negative amount. *)

val is_virtual : t -> bool
