(* Blocking-aware multicore fiber pool.

   N worker domains each own a Fiber runtime (External timer mode: the
   deadline slot is swept by the pool's shared timer domain — one timer
   core arming N slots, the LibUtimer shape) and two work-stealing
   deques, one per request class.  Scheduling order per worker:

     inbox (fresh arrivals, FIFO)          — fresh-first, so short new
     own LC deque -> own BE deque            requests are not stuck
     steal LC from all victims               behind parked long ones
     steal BE from all victims               (same policy Request_sched
                                             validates single-domain)

   Preempted fibers go back on their owner's deque (LIFO: cache-warm);
   idle workers steal from the top (FIFO: oldest first), scanning every
   victim for LC work before touching any BE — LC-first victim
   selection.  A fiber that blocks (Fiber.sleep_until) parks off-queue
   and the timer domain re-injects it through the inbox when its wake
   time passes, so a sleeping fiber never holds a domain.

   Continuations are rebound across domains on steal via
   Fiber.fn_resume_on; fiber bodies find their current runtime through
   domain-local state (checkpoint/sleep_ns below), never by capturing
   the launch-time runtime.

   Idle workers make a brief lock-free sweep, then block on a condition
   variable guarded by an epoch counter (bumped whenever any work
   appears), so an idle pool burns no CPU — which also keeps the pool
   honest on single-core hosts where a spinning sibling would starve
   the one domain doing real work. *)

type job = {
  body : unit -> unit;
  lc : bool;
  job_quantum : int option;
  mutable fn : unit Fiber.fn option; (* set at first launch *)
}

type worker = {
  id : int;
  rt : Fiber.t;
  lc_q : job Spmc_deque.t;
  be_q : job Spmc_deque.t;
  mutable executed : int; (* jobs completed on this domain *)
  mutable stolen : int; (* jobs this domain stole *)
}

type t = {
  workers : worker array;
  clk : Deadline_clock.t;
  m : Mutex.t;
  work_c : Condition.t;
  drain_c : Condition.t;
  inbox : job Queue.t; (* under m *)
  mutable parked : (int * job) list; (* (wake_ns, job), under m *)
  mutable inflight : int; (* under m *)
  mutable failed : int; (* under m *)
  epoch : int Atomic.t; (* bumped on any new work *)
  stop : bool Atomic.t;
  mutable domains : unit Domain.t list;
  mutable timer_dom : unit Domain.t option;
}

type stats = {
  executed : int array;
  stolen : int array;
  preemptions : int;
  failed : int;
}

(* A "no preemption" quantum: far enough out that a wall clock never
   reaches it, small enough that now + q cannot overflow. *)
let never_ns = max_int / 4

let current_rt : Fiber.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let checkpoint () =
  match !(Domain.DLS.get current_rt) with
  | Some rt -> Fiber.checkpoint rt
  | None -> ()

let sleep_ns ns =
  match !(Domain.DLS.get current_rt) with
  | Some rt ->
    if ns > 0 then
      Fiber.sleep_until rt ~wake_ns:(Deadline_clock.now_ns (Fiber.clock rt) + ns)
  | None -> invalid_arg "Pool.sleep_ns: not on a pool worker"

let notify t =
  Atomic.incr t.epoch;
  Mutex.lock t.m;
  Condition.broadcast t.work_c;
  Mutex.unlock t.m

let take_inbox t =
  Mutex.lock t.m;
  let j = if Queue.is_empty t.inbox then None else Some (Queue.pop t.inbox) in
  Mutex.unlock t.m;
  j

(* Lock-free (except the inbox peek) sweep for the next job, in the
   documented priority order.  Victim scans start just after [w] so the
   pack does not hammer one victim. *)
let try_find t (w : worker) =
  let n = Array.length t.workers in
  let steal_from sel =
    let rec go k =
      if k = n then None
      else
        let v = t.workers.((w.id + 1 + k) mod n) in
        if v.id = w.id then go (k + 1)
        else
          match Spmc_deque.steal (sel v) with
          | Some j ->
            w.stolen <- w.stolen + 1;
            Some j
          | None -> go (k + 1)
    in
    go 0
  in
  match take_inbox t with
  | Some j -> Some j
  | None -> (
    match Spmc_deque.pop w.lc_q with
    | Some j -> Some j
    | None -> (
      match Spmc_deque.pop w.be_q with
      | Some j -> Some j
      | None -> (
        match steal_from (fun v -> v.lc_q) with
        | Some j -> Some j
        | None -> steal_from (fun v -> v.be_q))))

let retire t delta_failed =
  Mutex.lock t.m;
  t.inflight <- t.inflight - 1;
  t.failed <- t.failed + delta_failed;
  if t.inflight = 0 then Condition.broadcast t.drain_c;
  Mutex.unlock t.m

let run_job t (w : worker) job =
  let ok =
    try
      (match job.fn with
      | None -> job.fn <- Some (Fiber.fn_launch w.rt ?quantum_ns:job.job_quantum job.body)
      | Some fn -> Fiber.fn_resume_on w.rt fn);
      true
    with _ -> false
  in
  if not ok then retire t 1
  else
    let fn = Option.get job.fn in
    if Fiber.fn_completed fn then begin
      w.executed <- w.executed + 1;
      retire t 0
    end
    else
      match Fiber.blocked_until fn with
      | Some wake ->
        Mutex.lock t.m;
        t.parked <- (wake, job) :: t.parked;
        Mutex.unlock t.m
      | None ->
        Spmc_deque.push (if job.lc then w.lc_q else w.be_q) job;
        notify t

let worker_loop t (w : worker) () =
  Domain.DLS.get current_rt := Some w.rt;
  let rec loop () =
    let e = Atomic.get t.epoch in
    match try_find t w with
    | Some job ->
      run_job t w job;
      loop ()
    | None ->
      if not (Atomic.get t.stop) then begin
        Mutex.lock t.m;
        if Atomic.get t.epoch = e && not (Atomic.get t.stop) then
          Condition.wait t.work_c t.m;
        Mutex.unlock t.m;
        loop ()
      end
  in
  loop ()

(* The shared timer domain: sweep every worker's deadline slot (the
   SENDUIPI fan-out) and re-inject parked fibers whose wake time
   passed.  Sleeps toward the nearest event, capped so shutdown and
   freshly armed slots are noticed promptly; never busy-spins — on an
   oversubscribed host that would steal the cycles the workers need.

   Every wake displaces a running worker for ~10 us on a loaded
   single-core host (context-switch pair plus cache refill), so the
   cadence is the software analogue of the paper's timer-core overhead
   and is kept as low as correctness allows: no-preemption sentinel
   deadlines (further than [timer_horizon_ns] out) do not count as
   armed, an unarmed pool dozes at [timer_doze_s], and an armed pool
   sleeps toward the nearest deadline minus a [timer_lead_ns] lead,
   clamped to [timer_min_s .. timer_cap_s].  The cap bounds preemption
   lateness for a deadline armed by another domain mid-sleep; the lead
   plus min keep the final approach accurate to a few tens of us. *)
let timer_cap_s = 250e-6
let timer_min_s = 20e-6
let timer_doze_s = 200e-6
let timer_lead_ns = 50_000
let timer_horizon_ns = 1_000_000_000

let timer_loop t () =
  while not (Atomic.get t.stop) do
    let now = Deadline_clock.now_ns t.clk in
    let nearest = ref max_int in
    Array.iter
      (fun (w : worker) ->
        ignore (Fiber.poll_slot w.rt ~now_ns:now);
        let d = Fiber.deadline_ns w.rt in
        if d <> 0 && d - now < timer_horizon_ns && d < !nearest then nearest := d)
      t.workers;
    Mutex.lock t.m;
    let due, rest = List.partition (fun (wake, _) -> wake <= now) t.parked in
    t.parked <- rest;
    (if due <> [] then begin
       (* Wake in wake-time order so earlier sleepers run first. *)
       List.sort (fun (a, _) (b, _) -> compare a b) due
       |> List.iter (fun (_, j) -> Queue.push j t.inbox);
       Atomic.incr t.epoch;
       Condition.broadcast t.work_c
     end);
    List.iter (fun (wake, _) -> if wake < !nearest then nearest := wake) rest;
    Mutex.unlock t.m;
    if !nearest = max_int then Unix.sleepf timer_doze_s
    else
      (* Negative gaps (deadline inside the lead, or already due) still
         sleep [timer_min_s]: the next sweep fires at most ~20 us late
         and the timer never busy-spins against its own workers. *)
      let gap = !nearest - timer_lead_ns - Deadline_clock.now_ns t.clk in
      Unix.sleepf
        (Float.min timer_cap_s (Float.max timer_min_s (float_of_int gap *. 1e-9)))
  done

let create ?quantum_ns ~workers () =
  if workers < 1 then invalid_arg "Pool.create: need at least one worker";
  (match quantum_ns with
  | Some q when q <= 0 -> invalid_arg "Pool.create: quantum must be positive"
  | Some _ | None -> ());
  let clk = Deadline_clock.wall () in
  let mk id =
    {
      id;
      rt =
        Fiber.create
          ~quantum_ns:(Option.value quantum_ns ~default:never_ns)
          ~timer:Fiber.External ~clock:clk ();
      lc_q = Spmc_deque.create ();
      be_q = Spmc_deque.create ();
      executed = 0;
      stolen = 0;
    }
  in
  let t =
    {
      workers = Array.init workers mk;
      clk;
      m = Mutex.create ();
      work_c = Condition.create ();
      drain_c = Condition.create ();
      inbox = Queue.create ();
      parked = [];
      inflight = 0;
      failed = 0;
      epoch = Atomic.make 0;
      stop = Atomic.make false;
      domains = [];
      timer_dom = None;
    }
  in
  t.domains <-
    Array.to_list (Array.map (fun w -> Domain.spawn (worker_loop t w)) t.workers);
  t.timer_dom <- Some (Domain.spawn (timer_loop t));
  t

let size t = Array.length t.workers
let clock t = t.clk

let submit t ?quantum_ns ?(lc = true) body =
  if Atomic.get t.stop then invalid_arg "Pool.submit: pool is shut down";
  (match quantum_ns with
  | Some q when q <= 0 -> invalid_arg "Pool.submit: quantum must be positive"
  | Some _ | None -> ());
  let job = { body; lc; job_quantum = quantum_ns; fn = None } in
  Mutex.lock t.m;
  t.inflight <- t.inflight + 1;
  Queue.push job t.inbox;
  Atomic.incr t.epoch;
  Condition.broadcast t.work_c;
  Mutex.unlock t.m

let drain t =
  Mutex.lock t.m;
  while t.inflight > 0 do
    Condition.wait t.drain_c t.m
  done;
  Mutex.unlock t.m

let stats t =
  Mutex.lock t.m;
  let failed = t.failed in
  Mutex.unlock t.m;
  {
    executed = Array.map (fun (w : worker) -> w.executed) t.workers;
    stolen = Array.map (fun (w : worker) -> w.stolen) t.workers;
    preemptions =
      Array.fold_left (fun a (w : worker) -> a + Fiber.preemptions w.rt) 0 t.workers;
    failed;
  }

let shutdown t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    Mutex.lock t.m;
    Condition.broadcast t.work_c;
    Condition.broadcast t.drain_c;
    Mutex.unlock t.m;
    List.iter Domain.join t.domains;
    t.domains <- [];
    Option.iter Domain.join t.timer_dom;
    t.timer_dom <- None;
    Array.iter (fun w -> Fiber.shutdown w.rt) t.workers
  end
