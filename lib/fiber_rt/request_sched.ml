type request = {
  body : unit -> unit;
  quantum_ns : int option;
  mutable fn : unit Fiber.fn option; (* set once launched *)
}

type t = {
  rt : Fiber.t;
  fresh : request Queue.t;
  long : request Queue.t;
  mutable n_completed : int;
  mutable passes : int;
  mutable max_fresh : int;
  mutable max_long : int;
}

type stats = {
  completed : int;
  preemptions : int;
  scheduler_passes : int;
  max_fresh_queue : int;
  max_long_queue : int;
}

let create rt =
  {
    rt;
    fresh = Queue.create ();
    long = Queue.create ();
    n_completed = 0;
    passes = 0;
    max_fresh = 0;
    max_long = 0;
  }

let submit t ?quantum_ns body =
  let r = { body; quantum_ns; fn = None } in
  Queue.push r t.fresh;
  t.max_fresh <- max t.max_fresh (Queue.length t.fresh);
  r

let completed r = match r.fn with Some fn -> Fiber.fn_completed fn | None -> false
let preempt_count r = match r.fn with Some fn -> Fiber.preempt_count fn | None -> 0

let settle t r =
  (* After a slice: finished requests are retired, preempted ones park
     in the long queue with their state saved in the continuation. *)
  match r.fn with
  | Some fn when Fiber.fn_completed fn -> t.n_completed <- t.n_completed + 1
  | Some _ | None ->
    Queue.push r t.long;
    t.max_long <- max t.max_long (Queue.length t.long)

let run_until_idle t =
  let total_preempts_before = Fiber.preemptions t.rt in
  while (not (Queue.is_empty t.fresh)) || not (Queue.is_empty t.long) do
    t.passes <- t.passes + 1;
    (* Fresh requests get preemptive priority (short ones escape
       head-of-line blocking behind parked long ones). *)
    if not (Queue.is_empty t.fresh) then begin
      let r = Queue.pop t.fresh in
      r.fn <- Some (Fiber.fn_launch t.rt ?quantum_ns:r.quantum_ns r.body);
      settle t r
    end
    else begin
      let r = Queue.pop t.long in
      (match r.fn with
      | Some fn -> Fiber.fn_resume fn
      | None -> invalid_arg "Request_sched: parked request was never launched");
      settle t r
    end
  done;
  {
    completed = t.n_completed;
    preemptions = Fiber.preemptions t.rt - total_preempts_before;
    scheduler_passes = t.passes;
    max_fresh_queue = t.max_fresh;
    max_long_queue = t.max_long;
  }
