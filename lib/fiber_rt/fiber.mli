(** Real-execution preemptible functions on OCaml 5 effects.

    This is the LibPreemptible API (Sec IV-C) running actual OCaml code
    under real (or virtual) time, rather than in the simulator:

    - {!fn_launch} creates a preemptible function and runs it
      immediately; control returns to the caller when it completes or
      its time slice is reached;
    - {!fn_resume} continues a preempted function under a fresh slice;
    - {!fn_completed} asks whether a reschedule is needed.

    Preemption works like LibUtimer, translated to what a memory-safe
    runtime allows: before resuming a function the scheduler arms a
    {e deadline slot} (an [Atomic] cell standing for the 64-byte
    deadline line); a timer — either the polling {!checkpoint} itself
    ([`Inline]) or a dedicated timer domain ([`Timer_domain], the analogue
    of the dedicated timer core) — raises the preempt flag when the
    deadline passes; the function observes the flag at its next
    {!checkpoint} (safepoint) and yields.  OCaml cannot take a true
    asynchronous interrupt mid-instruction, so safepoints substitute for
    hardware delivery; the DESIGN.md substitution table discusses why
    this preserves the scheduling semantics. *)

type t
(** A runtime instance: one scheduler thread's deadline slot, preempt
    flag, quantum, and counters. *)

type 'a fn
(** A preemptible function returning ['a]. *)

type timer_mode =
  | Inline  (** checkpoints compare the clock to the deadline themselves *)
  | Timer_domain
      (** a dedicated domain polls the deadline slot and raises the
          flag — the LibUtimer split; requires a wall clock *)
  | External
      (** some other party (a pool's shared timer domain, or a test)
        watches the slot via {!poll_slot}; checkpoints only read the
        flag.  This is the multi-runtime LibUtimer shape: one timer
        core arming N deadline slots. *)

val create :
  ?quantum_ns:int ->
  ?timer:timer_mode ->
  ?trace:Obs.Trace.t ->
  clock:Deadline_clock.t ->
  unit ->
  t
(** Default quantum 1 ms, timer [Inline]. [Timer_domain] with a virtual
    clock raises [Invalid_argument] (nothing would advance it).

    When [trace] is supplied (built on the same clock — pass
    [Deadline_clock.now_ns clock] as its clock closure), the runtime
    emits {!Obs.Trace.cat.Fiber} instants on track 0: ["fiber.arm"]
    (arg = slice ns) per armed slice, ["fiber.preempt"] (arg = running
    preemption count) per involuntary switch, and ["fiber.yield"] per
    cooperative yield.  Only worker-side paths emit, so the timer
    domain never touches the ring. *)

val shutdown : t -> unit
(** Stop the timer domain if any. Idempotent — a second call (or a
    call racing the first) is a no-op.  Functions suspended at shutdown
    time may still be resumed; with no timer left to raise the flag a
    [Timer_domain]/[External] runtime simply never preempts them again,
    so they run to completion. *)

val alive : t -> bool
(** [false] once {!shutdown} ran. *)

val clock : t -> Deadline_clock.t

val quantum_ns : t -> int

val set_quantum_ns : t -> int -> unit
(** Adjust the time slice for subsequent launches/resumes (the adaptive
    controller's knob). Raises on non-positive values. *)

val fn_launch : t -> ?quantum_ns:int -> (unit -> 'a) -> 'a fn
(** Create and immediately run a preemptible function until it
    completes or exceeds its slice. Raises [Invalid_argument] if called
    while another function is running on this runtime (one worker =
    one running function). If the function itself raises, the exception
    propagates and the fn is marked failed. *)

val fn_resume : 'a fn -> unit
(** Continue a preempted function. Raises [Invalid_argument] if it
    already completed or is currently running. *)

val fn_resume_on : t -> 'a fn -> unit
(** Continue a preempted function on a {e different} runtime — the
    work-stealing path: the thief domain resumes the continuation under
    its own deadline slot and quantum accounting.  The function body
    must resolve its runtime dynamically (e.g. [Pool.checkpoint], which
    reads domain-local state) rather than capturing the launch-time
    runtime.  Same preconditions as {!fn_resume}. *)

val fn_completed : 'a fn -> bool

val result : 'a fn -> 'a option
(** [Some r] once completed. *)

val preempt_count : 'a fn -> int

val checkpoint : t -> unit
(** Safepoint: fiber code calls this at loop boundaries; yields if the
    current slice expired. No-op outside a running function. *)

val poll_slot : t -> now_ns:int -> bool
(** Fire the deadline slot if armed and expired at [now_ns]: disarm it
    and raise the preempt flag, returning [true].  This is what an
    [External] watcher calls — one shared timer domain sweeping N
    runtimes' slots.  Also usable against [Inline]/[Timer_domain]
    runtimes in tests. *)

val deadline_ns : t -> int
(** Current armed absolute deadline, 0 when disarmed — lets an external
    timer sleep until the nearest slot. *)

val yield : t -> unit
(** Unconditional cooperative yield (counts as a voluntary switch, not
    a preemption). Must be called from inside a running function. *)

val sleep_until : t -> wake_ns:int -> unit
(** Blocking yield: suspend the function and record an absolute wake
    time, so a blocking-aware scheduler can park it (freeing the domain
    for other work) instead of requeueing it hot.  The scheduler reads
    the wake time with {!blocked_until}.  Must be called from inside a
    running function. *)

val blocked_until : 'a fn -> int option
(** [Some wake_ns] when the last suspension was a {!sleep_until} (and
    the fiber has not been resumed since); [None] for preemptions and
    plain yields. *)

val preemptions : t -> int
(** Total involuntary preemptions across the runtime's lifetime. *)
