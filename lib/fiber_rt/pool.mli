(** Blocking-aware multicore fiber pool with work stealing.

    [create ~workers ()] spawns [workers] domains, each owning a
    {!Fiber} runtime in [External] timer mode plus two Chase-Lev deques
    (one per request class), and one shared timer domain that sweeps
    every worker's deadline slot — the LibUtimer topology of a single
    timer core arming N deadline lines — and re-injects parked
    (sleeping) fibers when their wake time passes.

    Per-worker scheduling order: fresh inbox first (so new short work
    is not stuck behind parked long fibers), then the worker's own LC
    and BE deques (LIFO), then stealing — every victim is scanned for
    LC work before any BE work is touched (LC-first victim selection).
    Preempted fibers are pushed back on the {e owner's} deque and may
    be stolen and resumed by another domain ({!Fiber.fn_resume_on});
    fiber bodies must therefore use {!checkpoint}/{!sleep_ns} (which
    resolve the current runtime through domain-local state) rather than
    capturing a runtime.

    Idle workers block on a condition variable (no busy spinning), so
    an idle pool costs ~nothing — and a loaded pool on a single-core
    host is not starved by its own idle siblings. *)

type t

type stats = {
  executed : int array;  (** jobs completed, per worker domain *)
  stolen : int array;  (** successful steals, per thief domain *)
  preemptions : int;  (** involuntary preemptions, pool-wide *)
  failed : int;  (** jobs whose body raised *)
}

val create : ?quantum_ns:int -> workers:int -> unit -> t
(** Spawns [workers] + 1 (timer) domains on a wall clock.  Omitting
    [quantum_ns] disables preemption (fibers run until they yield,
    sleep, or complete).  Raises on [workers < 1] or a non-positive
    quantum. *)

val submit : t -> ?quantum_ns:int -> ?lc:bool -> (unit -> unit) -> unit
(** Enqueue a job (default [lc:true]; [quantum_ns] overrides the pool
    quantum for this job).  Safe from any domain, including pool
    workers.  If the body raises, the exception is swallowed and
    counted in [stats.failed].  Raises once the pool is shut down. *)

val checkpoint : unit -> unit
(** Safepoint for job bodies: yields if the current fiber's slice
    expired.  Resolves the runtime via domain-local state, so it works
    unchanged after the fiber is stolen to another domain.  No-op off
    the pool. *)

val sleep_ns : int -> unit
(** Block the current fiber for at least [ns]: it parks off-queue
    (freeing the domain) and the timer domain re-injects it through the
    inbox when the wake time passes.  Raises [Invalid_argument] when
    called off a pool worker. *)

val drain : t -> unit
(** Wait until every submitted job has completed (or failed). *)

val stats : t -> stats

val size : t -> int
(** Number of worker domains. *)

val clock : t -> Deadline_clock.t
(** The pool's wall clock. *)

val shutdown : t -> unit
(** Stop and join all domains.  Idempotent.  Call {!drain} first if
    pending work must finish; jobs still parked or queued at shutdown
    are abandoned. *)
