type stats = { completed : int; rounds : int; preemptions : int }

let run rt thunks =
  (* fn_launch runs each thread until completion or first preemption —
     exactly the Fig 7 loop structure. *)
  let fns = List.map (fun f -> Fiber.fn_launch rt f) thunks in
  let rounds = ref 0 in
  let rec cycle () =
    let pending = List.filter (fun fn -> not (Fiber.fn_completed fn)) fns in
    if pending <> [] then begin
      incr rounds;
      List.iter (fun fn -> if not (Fiber.fn_completed fn) then Fiber.fn_resume fn) pending;
      cycle ()
    end
  in
  cycle ();
  {
    completed = List.length fns;
    rounds = !rounds;
    preemptions = List.fold_left (fun acc fn -> acc + Fiber.preempt_count fn) 0 fns;
  }
