(* Chase-Lev work-stealing deque: single owner pushes/pops at the
   bottom (LIFO), any number of thieves steal from the top (FIFO) with
   a CAS on [top].  Growable: when the circular buffer fills, the owner
   copies the live window into a buffer twice the size and publishes it
   through an [Atomic].

   Safety under the OCaml memory model rests on two facts:

   - a slot at logical index [i] is overwritten only by a push at
     [i + size], which the grow check permits only once [top > i];
     any thief still racing for [i] then fails its CAS, so a stolen
     value is always the element that was pushed for that index;
   - element writes are published by the SC store to [bottom] (push)
     or [buf] (grow), and thieves read [top]/[bottom] before the slot,
     so the publication idiom makes the plain array read well-defined.

   Thieves distinguish nothing between "empty" and "lost a race": both
   return [None], and the caller moves on to the next victim. *)

type 'a buf = { mask : int; data : 'a option array }

type 'a t = {
  top : int Atomic.t;  (* next index a thief takes *)
  bottom : int Atomic.t;  (* next index the owner pushes *)
  buf : 'a buf Atomic.t;
}

let buf_make size = { mask = size - 1; data = Array.make size None }

let create () =
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (buf_make 16) }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)
let is_empty t = size t = 0
let capacity t = (Atomic.get t.buf).mask + 1

(* Owner only. *)
let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.buf in
  let buf =
    if b - tp > buf.mask then begin
      (* Full: publish a doubled buffer holding the live window.  Old
         slots stay intact for thieves that already read the old [buf]. *)
      let nbuf = buf_make (2 * (buf.mask + 1)) in
      for i = tp to b - 1 do
        nbuf.data.(i land nbuf.mask) <- buf.data.(i land buf.mask)
      done;
      Atomic.set t.buf nbuf;
      nbuf
    end
    else buf
  in
  buf.data.(b land buf.mask) <- Some x;
  Atomic.set t.bottom (b + 1)

(* Owner only: LIFO. *)
let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Empty: restore. *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let buf = Atomic.get t.buf in
    let x = buf.data.(b land buf.mask) in
    if b > tp then begin
      (* More than one element: no thief can reach index [b]. *)
      buf.data.(b land buf.mask) <- None;
      x
    end
    else begin
      (* Last element: race the thieves for it. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        buf.data.(b land buf.mask) <- None;
        x
      end
      else None
    end
  end

(* Any domain: FIFO. *)
let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    let buf = Atomic.get t.buf in
    let x = buf.data.(tp land buf.mask) in
    if Atomic.compare_and_set t.top tp (tp + 1) then x else None
  end
