(** The paper's Fig 7: a simple round-robin scheduler over N static
    preemptible user-level threads, written against the public Fiber
    API. *)

type stats = {
  completed : int;
  rounds : int;  (** scheduler passes over the task list *)
  preemptions : int;  (** involuntary yields observed *)
}

val run : Fiber.t -> (unit -> unit) list -> stats
(** Launch every thunk as a preemptible function, then cycle through
    the unfinished ones with [fn_resume] until all complete. *)
