type t = { moments : Welford.t; hist : Histogram.t }

type report = {
  count : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

let create () = { moments = Welford.create (); hist = Histogram.create () }

let record t v =
  Welford.add t.moments v;
  Histogram.record t.hist v

let count t = Welford.count t.moments
let mean t = Welford.mean t.moments
let quantile t q = Histogram.quantile t.hist q

let report t =
  if count t = 0 then invalid_arg "Summary.report: no data";
  {
    count = count t;
    mean = mean t;
    min = Welford.min_value t.moments;
    max = Welford.max_value t.moments;
    stddev = Welford.stddev t.moments;
    p50 = quantile t 0.50;
    p90 = quantile t 0.90;
    p99 = quantile t 0.99;
    p999 = quantile t 0.999;
  }

let report_opt t = if count t = 0 then None else Some (report t)

let merge_into ~dst ~src =
  Histogram.merge_into ~dst:dst.hist ~src:src.hist;
  Welford.merge_into ~dst:dst.moments ~src:src.moments

let pp_report_us fmt r =
  Format.fprintf fmt
    "n=%d mean=%.2fus p50=%.2fus p90=%.2fus p99=%.2fus p99.9=%.2fus max=%.2fus"
    r.count (r.mean /. 1e3) (r.p50 /. 1e3) (r.p90 /. 1e3) (r.p99 /. 1e3)
    (r.p999 /. 1e3) (r.max /. 1e3)

let pp_report_opt_us fmt = function
  | None -> Format.pp_print_string fmt "n=0 (no data)"
  | Some r -> pp_report_us fmt r
