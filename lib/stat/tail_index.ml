let hill samples ~k =
  let n = Array.length samples in
  if k < 1 || k >= n then invalid_arg "Tail_index.hill: k out of range";
  let sorted = Array.copy samples in
  Array.sort (fun a b -> compare b a) sorted;
  (* sorted.(0) is the largest. Hill: 1 / mean(log(x_(i)/x_(k+1))). *)
  let pivot = sorted.(k) in
  if pivot <= 0.0 then invalid_arg "Tail_index.hill: non-positive pivot sample";
  let acc = ref 0.0 in
  for i = 0 to k - 1 do
    if sorted.(i) <= 0.0 then invalid_arg "Tail_index.hill: non-positive sample";
    acc := !acc +. log (sorted.(i) /. pivot)
  done;
  if !acc <= 0.0 then infinity else float_of_int k /. !acc

let hill_auto samples =
  let n = Array.length samples in
  if n < 12 then invalid_arg "Tail_index.hill_auto: need at least 12 samples";
  let k = min (n - 1) (max 10 (n / 20)) in
  hill samples ~k

let ratio_proxy ~median ~tail =
  if median <= 0.0 || tail <= median then
    invalid_arg "Tail_index.ratio_proxy: requires tail > median > 0";
  log 50.0 /. log (tail /. median)

let is_heavy alpha = alpha >= 0.0 && alpha < 2.0
