type t = {
  buckets_per_decade : int;
  max_value : float;
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable max_seen : float;
  mutable min_seen : float;
}

let n_buckets ~buckets_per_decade ~max_value =
  let decades = log10 max_value in
  int_of_float (Float.ceil (decades *. float_of_int buckets_per_decade)) + 2

let create ?(buckets_per_decade = 90) ?(max_value = 1e10) () =
  if buckets_per_decade <= 0 then invalid_arg "Histogram.create: buckets_per_decade";
  if max_value <= 1.0 then invalid_arg "Histogram.create: max_value must exceed 1.0";
  {
    buckets_per_decade;
    max_value;
    counts = Array.make (n_buckets ~buckets_per_decade ~max_value) 0;
    total = 0;
    sum = 0.0;
    max_seen = 0.0;
    min_seen = infinity;
  }

let bucket_of t v =
  if v < 1.0 then 0
  else begin
    let idx = 1 + int_of_float (log10 v *. float_of_int t.buckets_per_decade) in
    min idx (Array.length t.counts - 1)
  end

(* Upper edge of bucket [i]: the value below which everything in the
   bucket falls. *)
let bucket_upper t i =
  if i = 0 then 1.0
  else 10.0 ** (float_of_int i /. float_of_int t.buckets_per_decade)

let record t v =
  let i = bucket_of t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v > t.max_seen then t.max_seen <- v;
  if v < t.min_seen then t.min_seen <- v

let count t = t.total

let quantile t q =
  if t.total = 0 then invalid_arg "Histogram.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q out of [0,1]";
  let target = int_of_float (Float.ceil (q *. float_of_int t.total)) in
  let target = max target 1 in
  let acc = ref 0 and result = ref t.max_seen and found = ref false in
  (try
     for i = 0 to Array.length t.counts - 1 do
       acc := !acc + t.counts.(i);
       if !acc >= target then begin
         result := Float.min (bucket_upper t i) t.max_seen;
         found := true;
         raise Exit
       end
     done
   with Exit -> ());
  ignore !found;
  !result

let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let max_recorded t = t.max_seen
let min_recorded t = if t.total = 0 then 0.0 else t.min_seen

let merge_into ~dst ~src =
  if
    dst.buckets_per_decade <> src.buckets_per_decade
    || dst.max_value <> src.max_value
  then invalid_arg "Histogram.merge_into: parameter mismatch";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum +. src.sum;
  if src.max_seen > dst.max_seen then dst.max_seen <- src.max_seen;
  if src.min_seen < dst.min_seen then dst.min_seen <- src.min_seen

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.max_seen <- 0.0;
  t.min_seen <- infinity
