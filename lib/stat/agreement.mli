(** Scale-aware agreement predicates for comparing latency
    distributions across clock domains (simulated time vs wall time).

    All bands are multiplicative and symmetric: [within_factor ~factor
    a b] holds iff [a/factor <= b <= a*factor] (equivalently
    [|log(a/b)| <= log factor]), so "within 3x" means the same thing
    whichever side is larger.  The sim-vs-real cross-validation gates
    on these plus {!Rank.spearman} over a load sweep. *)

val within_factor : factor:float -> float -> float -> bool
(** Both values positive and within a multiplicative [factor] of each
    other.  Raises [Invalid_argument] if [factor < 1]. *)

val tail_ratio : p50:float -> p99:float -> float
(** [p99 /. p50]; [nan] unless both are positive.  A scale-free shape
    statistic: constant offsets between clock domains cancel. *)

val tails_within_factor :
  factor:float -> a_p50:float -> a_p99:float -> b_p50:float -> b_p99:float -> bool
(** The two distributions' tail ratios agree within [factor]. *)
