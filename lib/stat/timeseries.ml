type bucket = { mutable count : int; mutable sum : float; mutable max : float }

type t = { window_ns : int; table : (int, bucket) Hashtbl.t }

type point = { t_start : int; count : int; mean : float; max : float; sum : float }

let create ~window_ns =
  if window_ns <= 0 then invalid_arg "Timeseries.create: window_ns must be positive";
  { window_ns; table = Hashtbl.create 64 }

let bucket_for t time =
  if time < 0 then invalid_arg "Timeseries.record: negative time";
  let key = time / t.window_ns in
  match Hashtbl.find_opt t.table key with
  | Some b -> b
  | None ->
    let b = { count = 0; sum = 0.0; max = neg_infinity } in
    Hashtbl.add t.table key b;
    b

let window_ns t = t.window_ns

let record t ~time v =
  let b = bucket_for t time in
  b.count <- b.count + 1;
  b.sum <- b.sum +. v;
  if v > b.max then b.max <- v

let mark t ~time = record t ~time 0.0

let points t =
  Hashtbl.fold
    (fun key (b : bucket) acc ->
      {
        t_start = key * t.window_ns;
        count = b.count;
        mean = (if b.count = 0 then 0.0 else b.sum /. float_of_int b.count);
        max = b.max;
        sum = b.sum;
      }
      :: acc)
    t.table []
  |> List.sort (fun a b -> compare a.t_start b.t_start)

let rate_per_sec p ~window_ns = float_of_int p.count *. 1e9 /. float_of_int window_ns

(* Bucket-wise merge of two series with the same window.  Used when a
   sweep shards one logical time axis across parallel tasks: counts and
   sums add, maxima take the max, so merged points equal the points of
   a single series that saw every sample. *)
let merge_into ~dst ~src =
  if dst.window_ns <> src.window_ns then
    invalid_arg "Timeseries.merge_into: window mismatch";
  Hashtbl.iter
    (fun key (b : bucket) ->
      match Hashtbl.find_opt dst.table key with
      | Some d ->
        d.count <- d.count + b.count;
        d.sum <- d.sum +. b.sum;
        if b.max > d.max then d.max <- b.max
      | None ->
        Hashtbl.add dst.table key { count = b.count; sum = b.sum; max = b.max })
    src.table
