(** Rank statistics.

    {!spearman} is the agreement metric the sim-vs-real
    cross-validation sweeps gate on: it asks whether two latency curves
    {e order} their sweep points the same way, which is meaningful even
    when the clock domains put them on different absolute scales. *)

val ranks : float array -> float array
(** 1-based ranks, ties averaged (fractional ranks). *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; 0 when either sample is constant.
    Raises [Invalid_argument] on empty or mismatched samples. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation = Pearson over {!ranks}.  Raises
    [Invalid_argument] unless both samples have the same length >= 2. *)
