let exact samples q =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Quantile.exact: empty sample set";
  if q < 0.0 || q > 1.0 then invalid_arg "Quantile.exact: q out of [0,1]";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median samples = exact samples 0.5
let percentile samples p = exact samples (p /. 100.0)

module P2 = struct
  (* Jain & Chlamtac's P-squared algorithm: five markers whose heights
     approximate the quantile without storing samples. *)
  type t = {
    q : float;
    heights : float array; (* 5 marker heights *)
    positions : float array; (* 5 marker positions, 1-based *)
    desired : float array;
    increments : float array;
    mutable n : int;
    init : float array; (* first five observations *)
  }

  let create q =
    if q <= 0.0 || q >= 1.0 then invalid_arg "Quantile.P2.create: q out of (0,1)";
    {
      q;
      heights = Array.make 5 0.0;
      positions = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
      desired = [| 1.0; 1.0 +. (2.0 *. q); 1.0 +. (4.0 *. q); 3.0 +. (2.0 *. q); 5.0 |];
      increments = [| 0.0; q /. 2.0; q; (1.0 +. q) /. 2.0; 1.0 |];
      n = 0;
      init = Array.make 5 0.0;
    }

  let count t = t.n

  let parabolic t i d =
    let qi = t.heights.(i)
    and qim = t.heights.(i - 1)
    and qip = t.heights.(i + 1) in
    let ni = t.positions.(i)
    and nim = t.positions.(i - 1)
    and nip = t.positions.(i + 1) in
    qi
    +. d
       /. (nip -. nim)
       *. (((ni -. nim +. d) *. (qip -. qi) /. (nip -. ni))
          +. ((nip -. ni -. d) *. (qi -. qim) /. (ni -. nim)))

  let linear t i d =
    let j = i + int_of_float d in
    t.heights.(i)
    +. d
       *. (t.heights.(j) -. t.heights.(i))
       /. (t.positions.(j) -. t.positions.(i))

  let add t x =
    if t.n < 5 then begin
      t.init.(t.n) <- x;
      t.n <- t.n + 1;
      if t.n = 5 then begin
        Array.sort compare t.init;
        Array.blit t.init 0 t.heights 0 5
      end
    end
    else begin
      t.n <- t.n + 1;
      (* Find the cell containing x and bump marker positions. *)
      let k =
        if x < t.heights.(0) then begin
          t.heights.(0) <- x;
          0
        end
        else if x >= t.heights.(4) then begin
          t.heights.(4) <- x;
          3
        end
        else begin
          let k = ref 0 in
          for i = 0 to 3 do
            if t.heights.(i) <= x && x < t.heights.(i + 1) then k := i
          done;
          !k
        end
      in
      for i = k + 1 to 4 do
        t.positions.(i) <- t.positions.(i) +. 1.0
      done;
      for i = 0 to 4 do
        t.desired.(i) <- t.desired.(i) +. t.increments.(i)
      done;
      for i = 1 to 3 do
        let d = t.desired.(i) -. t.positions.(i) in
        if
          (d >= 1.0 && t.positions.(i + 1) -. t.positions.(i) > 1.0)
          || (d <= -1.0 && t.positions.(i - 1) -. t.positions.(i) < -1.0)
        then begin
          let d = if d >= 0.0 then 1.0 else -1.0 in
          let candidate = parabolic t i d in
          let candidate =
            if t.heights.(i - 1) < candidate && candidate < t.heights.(i + 1)
            then candidate
            else linear t i d
          in
          t.heights.(i) <- candidate;
          t.positions.(i) <- t.positions.(i) +. d
        end
      done
    end

  let get t =
    if t.n = 0 then invalid_arg "Quantile.P2.get: no data";
    if t.n < 5 then exact (Array.sub t.init 0 t.n) t.q else t.heights.(2)
end
