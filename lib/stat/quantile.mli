(** Quantile computation over latency samples.

    Two flavours:
    - {!exact}: sorts a copy of the samples; the reference used by tests
      and by bounded-size experiment runs.
    - {!P2}: the P² streaming estimator for long-running monitors
      (used by the scheduler's statistics window, which must be O(1)
      per request as the paper requires the control loop off the
      critical path). *)

val exact : float array -> float -> float
(** [exact samples q] is the [q]-quantile ([0 <= q <= 1]) using linear
    interpolation between order statistics. Raises [Invalid_argument] on
    an empty array or out-of-range [q]. *)

val median : float array -> float

val percentile : float array -> float -> float
(** [percentile samples 99.0] is [exact samples 0.99]. *)

module P2 : sig
  type t

  val create : float -> t
  (** [create q] tracks the [q]-quantile ([0 < q < 1]). *)

  val add : t -> float -> unit

  val count : t -> int

  val get : t -> float
  (** Current estimate. With fewer than 5 observations, falls back to
      the exact quantile of what has been seen. Raises on no data. *)
end
