(** Log-bucketed latency histogram (HDR-histogram style).

    Values (nanoseconds, or any positive magnitude) are assigned to
    buckets whose width grows geometrically, giving bounded relative
    error across many orders of magnitude with O(1) recording — the same
    structure production tail-latency monitors use. *)

type t

val create : ?buckets_per_decade:int -> ?max_value:float -> unit -> t
(** Defaults: 90 buckets per decade (~2.6% relative error),
    [max_value] = 1e10 (10 seconds in ns). *)

val record : t -> float -> unit
(** Record a value. Values [< 1.0] land in the first bucket; values above
    [max_value] saturate into the last. *)

val count : t -> int

val quantile : t -> float -> float
(** [quantile t q] is an upper-bound estimate of the [q]-quantile.
    Raises on an empty histogram or [q] outside [0,1]. *)

val mean : t -> float

val max_recorded : t -> float
(** Largest raw value recorded (exact, not bucketed); 0.0 when empty. *)

val min_recorded : t -> float

val merge_into : dst:t -> src:t -> unit
(** Add [src]'s counts into [dst]. The two histograms must have been
    created with the same parameters. *)

val reset : t -> unit
