(* Scale-aware agreement predicates for cross-validating two latency
   distributions that live in different clock domains (simulated ns vs
   wall ns): multiplicative bands on matched quantiles and on tail
   ratios, i.e. symmetric bounds in log space. *)

let within_factor ~factor a b =
  if factor < 1.0 then invalid_arg "Agreement.within_factor: factor must be >= 1";
  a > 0.0 && b > 0.0 && Float.abs (log (a /. b)) <= log factor +. 1e-12

let tail_ratio ~p50 ~p99 =
  if p50 <= 0.0 || p99 <= 0.0 then nan else p99 /. p50

let tails_within_factor ~factor ~a_p50 ~a_p99 ~b_p50 ~b_p99 =
  within_factor ~factor (tail_ratio ~p50:a_p50 ~p99:a_p99)
    (tail_ratio ~p50:b_p50 ~p99:b_p99)
