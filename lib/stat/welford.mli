(** Streaming mean / variance (Welford's algorithm). *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0.0 when empty. *)

val variance : t -> float
(** Sample variance (n-1 denominator); 0.0 with fewer than 2 samples. *)

val stddev : t -> float

val min_value : t -> float
(** Smallest observation; [infinity] when empty. *)

val max_value : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val merge : t -> t -> t
(** Combine two accumulators (parallel variance formula). *)

val merge_into : dst:t -> src:t -> unit
(** In-place variant of {!merge}: fold [src] into [dst]. *)
