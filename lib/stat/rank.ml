(* Rank statistics: Spearman correlation between two samples, used by
   the sim-vs-real cross-validation to check that two latency sweeps
   order their points the same way even when absolute scales differ. *)

let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  (* Average ranks over ties so exact-tie inputs correlate as expected. *)
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2.0 +. 1.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let pearson xs ys =
  let n = Array.length xs in
  if n = 0 || n <> Array.length ys then
    invalid_arg "Rank.pearson: need two equal non-empty samples";
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

let spearman xs ys =
  if Array.length xs <> Array.length ys || Array.length xs < 2 then
    invalid_arg "Rank.spearman: need two equal samples of at least 2 points";
  pearson (ranks xs) (ranks ys)
