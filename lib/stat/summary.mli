(** Per-run latency / throughput summary.

    Combines a streaming moment accumulator with a log-bucketed histogram
    so that runs with millions of requests summarize in O(1) memory while
    keeping tail quantiles accurate to a few percent. *)

type t

type report = {
  count : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

val create : unit -> t

val record : t -> float -> unit
(** Record one latency observation (nanoseconds). *)

val count : t -> int

val mean : t -> float

val quantile : t -> float -> float

val report : t -> report
(** Raises [Invalid_argument] if no data was recorded. *)

val report_opt : t -> report option
(** Like {!report}; [None] instead of raising when no data was
    recorded.  Snapshot paths (metrics export, [lpctl] rendering) use
    this so an idle histogram never turns into an exception. *)

val merge_into : dst:t -> src:t -> unit

val pp_report_us : Format.formatter -> report -> unit
(** Render a report with latencies converted from ns to µs. *)

val pp_report_opt_us : Format.formatter -> report option -> unit
(** {!pp_report_us} that renders [None] as ["n=0 (no data)"]. *)
