(** Tail-index estimation for the adaptive quantum controller.

    Algorithm 1 in the paper fits a tail index [alpha] from past latency
    statistics ([0 <= alpha < 2] is treated as heavy-tailed).  We provide
    the standard Hill estimator over the largest order statistics, plus
    the paper's cheap proxy that infers heaviness from the ratio of the
    tail quantile to the median. *)

val hill : float array -> k:int -> float
(** [hill samples ~k] is the Hill estimate of the tail index using the
    [k] largest samples. Requires [1 <= k < n] and positive samples in
    the top-[k] range. Larger result = lighter tail. *)

val hill_auto : float array -> float
(** Hill estimate with [k = max(10, n/20)] capped below [n], a common
    heuristic. Requires at least 12 samples. *)

val ratio_proxy : median:float -> tail:float -> float
(** The paper's lightweight proxy: fits a Pareto tail through the median
    and the tail (p99) quantile.  For a Pareto distribution with index
    [alpha], [p99/median = (0.5/0.01)^(1/alpha)], so
    [alpha = ln 50 / ln (tail/median)].  Requires [tail > median > 0]. *)

val is_heavy : float -> bool
(** The paper's threshold: [0 <= alpha < 2]. *)
