(** Windowed time series for the time-plots in the evaluation
    (Fig 9 SLO violations over time, Fig 14 QPS / latency traces).

    Observations are bucketed by a fixed window width; each bucket keeps
    streaming moments so the series can be rendered as
    (window start, count, mean, max) rows. *)

type t

type point = {
  t_start : int; (* window start, ns *)
  count : int;
  mean : float;
  max : float;
  sum : float;
}

val create : window_ns:int -> t
(** Requires [window_ns > 0]. *)

val record : t -> time:int -> float -> unit
(** Record value at simulation time [time] (>= 0). *)

val mark : t -> time:int -> unit
(** Record an event with no magnitude (counting series, e.g. QPS). *)

val points : t -> point list
(** All non-empty windows in time order. *)

val rate_per_sec : point -> window_ns:int -> float
(** Events per second represented by a counting-window point. *)

val window_ns : t -> int
(** The bucket width the series was created with. *)

val merge_into : dst:t -> src:t -> unit
(** Bucket-wise merge: counts and sums add, maxima take the max.
    Raises [Invalid_argument] when the windows differ.  Associative and
    commutative, so sharded sweeps can fold partial series in any
    grouping and land on the same points. *)
