(** Hierarchical timing wheel.

    The paper notes (Sec IV-A) that for applications with large thread
    counts LibUtimer "can opt in and use timing wheel techniques [64]"
    instead of scanning every deadline slot.  This is that structure: a
    hierarchy of circular buckets; insert and cancel are O(1), and
    advancing the clock touches only the buckets it crosses (expired
    entries cascade down from coarser levels). *)

type 'a t

type 'a handle

val create : ?levels:int -> ?slots_per_level:int -> tick:int -> unit -> 'a t
(** [tick] is the finest granularity (e.g. 1 µs in TSC or ns units).
    Capacity is [tick × slots_per_level^levels]; defaults 4 levels × 64
    slots. Raises on non-positive parameters. *)

val add : 'a t -> deadline:int -> 'a -> 'a handle
(** Insert an entry expiring at absolute time [deadline]. Deadlines at
    or before the current wheel time expire on the next {!advance}.
    Raises if [deadline] exceeds the wheel horizon. *)

val cancel : 'a t -> 'a handle -> unit
(** O(1); idempotent. *)

val advance : 'a t -> upto:int -> 'a list
(** Move the wheel clock to [upto], returning expired entries in
    deadline order (ties in insertion order). *)

val size : 'a t -> int
(** Live (non-cancelled, non-expired) entries. *)

val now : 'a t -> int

val horizon : 'a t -> int
(** Largest deadline currently representable. *)
