module Timing_wheel = Timing_wheel

type scan_mode = Linear | Wheel

type config = {
  poll_ns : int;
  per_slot_scan_ns : int;
  loop_overhead_ns : int;
  scan : scan_mode;
  wheel_tick_ns : int;
  contention_mean_ns : int;
  contention_prob : float;
}

let default_config =
  {
    poll_ns = 500;
    per_slot_scan_ns = 8;
    loop_overhead_ns = 30;
    scan = Linear;
    wheel_tick_ns = 1_000;
    contention_mean_ns = 0;
    contention_prob = 0.0;
  }

type slot = {
  owner : t;
  uitt_index : int;
  mutable deadline_ns : int; (* max_int = disarmed *)
  mutable wheel_handle : slot Timing_wheel.handle option;
}

and t = {
  sim : Engine.Sim.t;
  uintr : Hw.Uintr.t;
  sender : Hw.Uintr.sender;
  config : config;
  rng : Engine.Rng.t;
  mutable slots : slot list;
  mutable n_slots : int;
  wheel : slot Timing_wheel.t option;
  mutable is_running : bool;
  mutable loop_ev : Engine.Sim.event option;
  mutable n_fired : int;
  lateness_stat : Stat.Summary.t;
}

let create sim ~uintr ?(config = default_config) () =
  if config.poll_ns <= 0 then invalid_arg "Utimer.create: poll_ns must be positive";
  {
    sim;
    uintr;
    sender = Hw.Uintr.create_sender uintr ~name:"utimer" ();
    config;
    rng = Engine.Sim.fork_rng sim;
    slots = [];
    n_slots = 0;
    wheel =
      (match config.scan with
      | Linear -> None
      | Wheel -> Some (Timing_wheel.create ~tick:config.wheel_tick_ns ()));
    is_running = false;
    loop_ev = None;
    n_fired = 0;
    lateness_stat = Stat.Summary.create ();
  }

let register t ~receiver ~vector =
  let uitt_index = Hw.Uintr.connect t.sender receiver ~vector in
  let slot = { owner = t; uitt_index; deadline_ns = max_int; wheel_handle = None } in
  t.slots <- slot :: t.slots;
  t.n_slots <- t.n_slots + 1;
  slot

let disarm slot =
  slot.deadline_ns <- max_int;
  match (slot.owner.wheel, slot.wheel_handle) with
  | Some wheel, Some h ->
    Timing_wheel.cancel wheel h;
    slot.wheel_handle <- None
  | _ -> ()

let arm_at slot ~time_ns =
  disarm slot;
  slot.deadline_ns <- time_ns;
  match slot.owner.wheel with
  | None -> ()
  | Some wheel ->
    let deadline = max time_ns (Timing_wheel.now wheel + 1) in
    slot.wheel_handle <- Some (Timing_wheel.add wheel ~deadline slot)

let arm_after slot ~ns =
  if ns < 0 then invalid_arg "Utimer.arm_after: negative delay";
  arm_at slot ~time_ns:(Engine.Sim.now slot.owner.sim + ns)

let is_armed slot = slot.deadline_ns <> max_int

let fire t now slot =
  (* The worker may have disarmed between the scan decision and the
     SENDUIPI issue point; the timer thread re-checks the slot. *)
  if slot.deadline_ns <> max_int then begin
    t.n_fired <- t.n_fired + 1;
    Stat.Summary.record t.lateness_stat (float_of_int (now - slot.deadline_ns));
    slot.deadline_ns <- max_int;
    slot.wheel_handle <- None;
    Hw.Uintr.senduipi t.sender slot.uitt_index
  end

(* One scan iteration.  Returns its modeled CPU cost; expired slots are
   fired sequentially, each after the work needed to reach it. *)
let iteration t =
  let now = Engine.Sim.now t.sim in
  let stall =
    if
      t.config.contention_mean_ns > 0
      && Engine.Rng.float t.rng < t.config.contention_prob
    then
      int_of_float
        (Engine.Rng.exponential t.rng ~mean:(float_of_int t.config.contention_mean_ns))
    else 0
  in
  let cost = ref (t.config.loop_overhead_ns + stall) in
  let fire_one slot =
    cost := !cost + Hw.Uintr.send_cost_ns t.uintr;
    let at = now + !cost in
    ignore (Engine.Sim.at t.sim at (fun () -> fire t at slot))
  in
  (match t.wheel with
  | None ->
    (* Linear scan: inspect every slot. *)
    cost := !cost + (t.n_slots * t.config.per_slot_scan_ns);
    List.iter
      (fun slot -> if slot.deadline_ns <= now then fire_one slot)
      t.slots
  | Some wheel ->
    (* Wheel scan: constant bookkeeping + expired entries only. *)
    cost := !cost + t.config.per_slot_scan_ns;
    let expired = Timing_wheel.advance wheel ~upto:now in
    List.iter
      (fun slot -> if slot.deadline_ns <= now then fire_one slot)
      expired);
  !cost

let rec loop t () =
  if t.is_running then begin
    let cost = iteration t in
    let next = max t.config.poll_ns cost in
    t.loop_ev <- Some (Engine.Sim.after t.sim next (loop t))
  end

let start t =
  if not t.is_running then begin
    t.is_running <- true;
    loop t ()
  end

let stop t =
  t.is_running <- false;
  match t.loop_ev with
  | Some ev ->
    Engine.Sim.cancel ev;
    t.loop_ev <- None
  | None -> ()

let running t = t.is_running
let fired t = t.n_fired
let lateness t = t.lateness_stat
let slot_count t = t.n_slots

(* UMWAIT-parked polling measured at ~1.2 W (Sec V-B); a loop too hot
   to park approaches typical full-core active power. *)
let umwait_poll_watts = 1.2
let hot_poll_watts = 4.0
let umwait_wake_latency_ns = 200

let power_watts t =
  if t.config.poll_ns >= umwait_wake_latency_ns then umwait_poll_watts
  else hot_poll_watts

let energy_joules t ~duration_ns =
  if duration_ns < 0 then invalid_arg "Utimer.energy_joules: negative duration";
  power_watts t *. (float_of_int duration_ns /. 1e9)

let min_quantum_ns t =
  let p = Hw.Uintr.params t.uintr in
  t.config.poll_ns + p.Hw.Params.uintr_delivery_ns + p.Hw.Params.uintr_handler_entry_ns
