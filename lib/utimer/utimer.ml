module Timing_wheel = Timing_wheel

type scan_mode = Linear | Wheel

type config = {
  poll_ns : int;
  per_slot_scan_ns : int;
  loop_overhead_ns : int;
  scan : scan_mode;
  wheel_tick_ns : int;
  contention_mean_ns : int;
  contention_prob : float;
}

let default_config =
  {
    poll_ns = 500;
    per_slot_scan_ns = 8;
    loop_overhead_ns = 30;
    scan = Linear;
    wheel_tick_ns = 1_000;
    contention_mean_ns = 0;
    contention_prob = 0.0;
  }

type watchdog = {
  wd_poll_ns : int;
  wd_grace_ns : int;
  wd_max_retries : int;
  wd_backoff_ns : int;
  wd_core_dead_ns : int;
  wd_spare_cores : int;
  wd_failover_ns : int;
}

let default_watchdog =
  {
    wd_poll_ns = 2_000;
    wd_grace_ns = 5_000;
    wd_max_retries = 6;
    wd_backoff_ns = 1_000;
    wd_core_dead_ns = 25_000;
    wd_spare_cores = 1;
    wd_failover_ns = 5_000;
  }

type health = Healthy | Failed_over | Degraded

type wd_stats = {
  wd_detected : int;
  wd_recovered : int;
  wd_retries : int;
  wd_failovers : int;
  wd_degraded_slots : int;
  wd_detection_latency : Stat.Summary.report option;
}

(* Fault points consulted by the timer core itself. *)
type fault_points = {
  f_stall : Fault.point;
  f_crash : Fault.point;
  f_slot_lost : Fault.point;
  plan : Fault.t;
}

type slot = {
  owner : t;
  uitt_index : int;
  receiver : Hw.Uintr.receiver;
  mutable deadline_ns : int; (* the scanned memory word; max_int = disarmed *)
  mutable intent_ns : int; (* the worker's armed deadline (ground truth) *)
  mutable armed_at_ns : int;
  mutable wheel_handle : slot Timing_wheel.handle option;
  mutable fire_issued_at : int; (* when SENDUIPI was issued; max_int = none *)
  mutable deliveries_snap : int; (* receiver delivery count at issue time *)
  mutable retries : int;
  mutable next_retry_at : int;
  mutable slot_degraded : bool; (* retry budget exhausted *)
  mutable k_fire : unit -> unit; (* preallocated fire callback (DESIGN §9) *)
}

and t = {
  sim : Engine.Sim.t;
  uintr : Hw.Uintr.t;
  sender : Hw.Uintr.sender;
  config : config;
  watchdog : watchdog option;
  faults : fault_points option;
  trace : Obs.Trace.t option;
  fault_stall_ns : int;
  rng : Engine.Rng.t;
  mutable slots : slot list;
  mutable n_slots : int;
  wheel : slot Timing_wheel.t option;
  mutable is_running : bool;
  mutable crashed : bool; (* fault: the timer core went dark *)
  mutable core_dead : bool; (* watchdog gave up on timer cores *)
  mutable failing_over : bool;
  mutable last_scan_ns : int;
  mutable spares_left : int;
  mutable loop_ev : Engine.Sim.event; (* Sim.null when no poll is pending *)
  mutable wd_ev : Engine.Sim.event;
  mutable k_loop : unit -> unit; (* preallocated poll/watchdog callbacks *)
  mutable k_wd : unit -> unit;
  mutable scan_cost : int; (* scratch for the current scan iteration *)
  mutable scan_expired : int;
  mutable on_degraded : (unit -> unit) option;
  mutable n_fired : int;
  mutable n_detected : int;
  mutable n_recovered : int;
  mutable n_retries : int;
  mutable n_failovers : int;
  mutable n_degraded_slots : int;
  lateness_stat : Stat.Summary.t;
  detect_stat : Stat.Summary.t;
}

let noop () = ()

let set_on_degraded t f = t.on_degraded <- Some f

(* Trace track conventions: per-slot events land on 900 + uitt_index,
   core-level events (scan loop, watchdog core checks) on 999. *)
let core_track = 999
let slot_track slot = 900 + slot.uitt_index

let tr t ~name ~track ~arg =
  match t.trace with
  | Some trace -> Obs.Trace.instant trace Obs.Trace.Utimer ~name ~track ~arg
  | None -> ()

let cancel_wheel_entry slot =
  match (slot.owner.wheel, slot.wheel_handle) with
  | Some wheel, Some h ->
    Timing_wheel.cancel wheel h;
    slot.wheel_handle <- None
  | _ -> ()

let disarm slot =
  let t = slot.owner in
  (* The worker closing an episode the watchdog had already retried is
     the delivery confirmation arriving from the other side: the retry
     landed and the handler ran.  Credit the recovery here, since the
     re-arm/disarm usually beats the watchdog's next poll. *)
  if
    slot.fire_issued_at <> max_int && slot.retries > 0
    && Hw.Uintr.deliveries slot.receiver > slot.deliveries_snap
  then begin
    t.n_recovered <- t.n_recovered + 1;
    (match t.trace with
    | Some trace ->
      Obs.Trace.instant trace Obs.Trace.Utimer ~name:"wd.recovered"
        ~track:(900 + slot.uitt_index) ~arg:slot.retries
    | None -> ());
    match t.faults with Some f -> Fault.mark_recovered f.plan () | None -> ()
  end;
  slot.deadline_ns <- max_int;
  slot.intent_ns <- max_int;
  slot.fire_issued_at <- max_int;
  slot.retries <- 0;
  cancel_wheel_entry slot

let add_to_wheel slot ~time_ns =
  match slot.owner.wheel with
  | None -> ()
  | Some wheel ->
    let deadline = max time_ns (Timing_wheel.now wheel + 1) in
    slot.wheel_handle <- Some (Timing_wheel.add wheel ~deadline slot)

(* [arm_at] with a deadline already in the past is legal: the slot
   expires on the very next scan and its lateness is measured from the
   arm instant (zero-clamped), not from the fictitious past deadline. *)
let arm_at slot ~time_ns =
  disarm slot;
  let t = slot.owner in
  slot.intent_ns <- time_ns;
  slot.armed_at_ns <- Engine.Sim.now t.sim;
  slot.slot_degraded <- false;
  let lost =
    match t.faults with
    | Some f -> Fault.fires f.f_slot_lost ~now:slot.armed_at_ns
    | None -> false
  in
  if not lost then begin
    (* The plain store into the 64-byte deadline slot. A lost store
       leaves the scanned word disarmed while the worker believes the
       deadline is set; only the watchdog can notice. *)
    slot.deadline_ns <- time_ns;
    add_to_wheel slot ~time_ns
  end

let arm_after slot ~ns =
  if ns < 0 then invalid_arg "Utimer.arm_after: negative delay";
  arm_at slot ~time_ns:(Engine.Sim.now slot.owner.sim + ns)

let is_armed slot = slot.intent_ns <> max_int
let intent_ns slot = if slot.intent_ns = max_int then None else Some slot.intent_ns
let slot_degraded slot = slot.slot_degraded

(* Issue the SENDUIPI for a slot and start the delivery-confirmation
   episode the watchdog tracks.  [count_fired] distinguishes the first
   issue of a deadline (a preemption interrupt, counted and measured)
   from a watchdog re-issue of the same deadline (counted as a retry). *)
let issue t now slot ~count_fired =
  let intent = slot.intent_ns in
  slot.deadline_ns <- max_int;
  cancel_wheel_entry slot;
  (match t.watchdog with
  | Some wd ->
    (* Open a delivery-confirmation episode the watchdog will close. *)
    slot.fire_issued_at <- now;
    slot.deliveries_snap <- Hw.Uintr.deliveries slot.receiver;
    slot.next_retry_at <- now + wd.wd_grace_ns
  | None ->
    (* Fire-and-forget: the slot reads as disarmed immediately. *)
    slot.intent_ns <- max_int;
    slot.fire_issued_at <- max_int);
  if count_fired then begin
    t.n_fired <- t.n_fired + 1;
    (* Lateness is measured against the armed deadline; a deadline that
       was already in the past when armed measures from the arm instant,
       zero-clamped. *)
    let reference = max slot.armed_at_ns (min intent now) in
    let late = max 0 (now - reference) in
    Stat.Summary.record t.lateness_stat (float_of_int late);
    tr t ~name:"utimer.fire" ~track:(slot_track slot) ~arg:late
  end;
  Hw.Uintr.senduipi t.sender slot.uitt_index

let fire t now slot =
  (* The worker may have disarmed between the scan decision and the
     SENDUIPI issue point; the timer thread re-checks the slot.  A core
     that was stopped or crashed meanwhile never reaches the issue
     point. *)
  if t.is_running && (not t.crashed) && slot.deadline_ns <> max_int then
    issue t now slot ~count_fired:true

let register t ~receiver ~vector =
  let uitt_index = Hw.Uintr.connect t.sender receiver ~vector in
  let slot =
    {
      owner = t;
      uitt_index;
      receiver;
      deadline_ns = max_int;
      intent_ns = max_int;
      armed_at_ns = 0;
      wheel_handle = None;
      fire_issued_at = max_int;
      deliveries_snap = 0;
      retries = 0;
      next_retry_at = 0;
      slot_degraded = false;
      k_fire = noop;
    }
  in
  (* A slot has at most one SENDUIPI in flight (the scan clears its
     deadline word before the issue event runs), so one preallocated
     callback per slot covers every fire. *)
  slot.k_fire <- (fun () -> fire t (Engine.Sim.now t.sim) slot);
  t.slots <- slot :: t.slots;
  t.n_slots <- t.n_slots + 1;
  slot

(* Fire every expired slot in list order, charging each SENDUIPI to the
   running scan cost.  Top-level recursion: the scan allocates no
   closures or ref cells (DESIGN §9). *)
let rec fire_expired t ~now = function
  | [] -> ()
  | slot :: rest ->
    if slot.deadline_ns <= now then begin
      t.scan_expired <- t.scan_expired + 1;
      t.scan_cost <- t.scan_cost + Hw.Uintr.send_cost_ns t.uintr;
      ignore (Engine.Sim.at t.sim (now + t.scan_cost) slot.k_fire)
    end;
    fire_expired t ~now rest

(* One scan iteration.  Returns its modeled CPU cost; expired slots are
   fired sequentially, each after the work needed to reach it. *)
let iteration t =
  let now = Engine.Sim.now t.sim in
  let stall =
    if
      t.config.contention_mean_ns > 0
      && Engine.Rng.float t.rng < t.config.contention_prob
    then
      int_of_float
        (Engine.Rng.exponential t.rng ~mean:(float_of_int t.config.contention_mean_ns))
    else 0
  in
  let fault_stall =
    match t.faults with
    | Some f when Fault.fires f.f_stall ~now -> t.fault_stall_ns
    | Some _ | None -> 0
  in
  t.scan_cost <- t.config.loop_overhead_ns + stall + fault_stall;
  t.scan_expired <- 0;
  (match t.wheel with
  | None ->
    (* Linear scan: inspect every slot. *)
    t.scan_cost <- t.scan_cost + (t.n_slots * t.config.per_slot_scan_ns);
    fire_expired t ~now t.slots
  | Some wheel ->
    (* Wheel scan: constant bookkeeping + expired entries only. *)
    t.scan_cost <- t.scan_cost + t.config.per_slot_scan_ns;
    fire_expired t ~now (Timing_wheel.advance wheel ~upto:now));
  (* Only scans that issued fires are traced: an idle poll loop would
     otherwise flood the ring with one event per poll_ns. *)
  if t.scan_expired > 0 then tr t ~name:"utimer.scan" ~track:core_track ~arg:t.scan_cost;
  t.scan_cost

let loop t =
  if t.is_running && (not t.crashed) && not t.core_dead then begin
    let crash =
      match t.faults with
      | Some f -> Fault.fires f.f_crash ~now:(Engine.Sim.now t.sim)
      | None -> false
    in
    if crash then t.crashed <- true (* the core goes dark: no rescheduling *)
    else begin
      let cost = iteration t in
      t.last_scan_ns <- Engine.Sim.now t.sim;
      let next = max t.config.poll_ns cost in
      t.loop_ev <- Engine.Sim.after t.sim next t.k_loop
    end
  end

(* ------------------------------------------------------------------ *)
(* Watchdog: deadline-miss detection, SENDUIPI retry, core failover     *)
(* ------------------------------------------------------------------ *)

(* Rewrite every surviving armed slot's deadline word (and wheel entry)
   from the worker's intent — used when a spare core takes over and on
   restart after [stop], and incidentally repairs lost slot stores. *)
let resync_slots t =
  List.iter
    (fun slot ->
      if slot.intent_ns <> max_int && slot.fire_issued_at = max_int
         && not slot.slot_degraded
      then begin
        let stale =
          slot.deadline_ns <> slot.intent_ns
          || (match t.wheel with
             | Some _ -> Option.is_none slot.wheel_handle
             | None -> false)
        in
        if stale then begin
          slot.deadline_ns <- slot.intent_ns;
          cancel_wheel_entry slot;
          add_to_wheel slot ~time_ns:slot.intent_ns
        end
      end)
    t.slots

let mark_detected t latency =
  t.n_detected <- t.n_detected + 1;
  Stat.Summary.record t.detect_stat (float_of_int (max 0 latency))

let declare_degraded t =
  tr t ~name:"wd.degraded" ~track:core_track ~arg:0;
  t.core_dead <- true;
  Engine.Sim.cancel t.loop_ev;
  t.loop_ev <- Engine.Sim.null;
  match t.on_degraded with Some f -> f () | None -> ()

let wd_check_core t wd now =
  if
    (not t.failing_over)
    && now - t.last_scan_ns > wd.wd_core_dead_ns
  then begin
    (* The scan loop stopped making progress: crashed, or stalled past
       the liveness bound.  Either way the core is declared dead. *)
    mark_detected t (now - t.last_scan_ns - t.config.poll_ns);
    tr t ~name:"wd.core_dead" ~track:core_track ~arg:(now - t.last_scan_ns);
    (match t.faults with Some f -> Fault.mark_detected f.plan ~hint:"utimer.crash" () | None -> ());
    if t.spares_left > 0 then begin
      t.spares_left <- t.spares_left - 1;
      t.n_failovers <- t.n_failovers + 1;
      t.failing_over <- true;
      tr t ~name:"wd.failover" ~track:core_track ~arg:t.spares_left;
      Engine.Sim.cancel t.loop_ev;
      t.loop_ev <- Engine.Sim.null;
      ignore
        (Engine.Sim.after t.sim wd.wd_failover_ns (fun () ->
             if t.is_running then begin
               (* The spare core starts scanning: re-arm survivors so
                  in-flight quanta keep their deadlines. *)
               t.failing_over <- false;
               t.crashed <- false;
               t.last_scan_ns <- Engine.Sim.now t.sim;
               resync_slots t;
               t.n_recovered <- t.n_recovered + 1;
               tr t ~name:"wd.recovered" ~track:core_track ~arg:0;
               (match t.faults with
               | Some f -> Fault.mark_recovered f.plan ~hint:"utimer.crash" ()
               | None -> ());
               loop t
             end))
    end
    else declare_degraded t
  end

let wd_check_slot t wd now slot =
  if (not slot.slot_degraded) && slot.intent_ns <> max_int then begin
    if slot.fire_issued_at = max_int then begin
      (* Armed, past deadline + grace, and the scanner never issued the
         preemption: the deadline store was lost or the scanner is not
         keeping up.  Repair the slot and fire it from here. *)
      if now > slot.intent_ns + wd.wd_grace_ns then begin
        mark_detected t (now - slot.intent_ns);
        tr t ~name:"wd.late_fire" ~track:(slot_track slot) ~arg:(now - slot.intent_ns);
        (match t.faults with
        | Some f -> Fault.mark_detected f.plan ~hint:"utimer.slot_lost" ()
        | None -> ());
        issue t now slot ~count_fired:true;
        (match t.faults with
        | Some f -> Fault.mark_recovered f.plan ~hint:"utimer.slot_lost" ()
        | None -> ())
      end
    end
    else if Hw.Uintr.deliveries slot.receiver > slot.deliveries_snap then begin
      (* Delivery confirmed: close the episode. *)
      if slot.retries > 0 then begin
        t.n_recovered <- t.n_recovered + 1;
        tr t ~name:"wd.recovered" ~track:(slot_track slot) ~arg:slot.retries;
        match t.faults with Some f -> Fault.mark_recovered f.plan () | None -> ()
      end;
      slot.intent_ns <- max_int;
      slot.fire_issued_at <- max_int;
      slot.retries <- 0
    end
    else if now >= slot.next_retry_at then begin
      if slot.retries >= wd.wd_max_retries then begin
        (* Retry budget exhausted: surface Degraded instead of raising
           or retrying forever. *)
        slot.slot_degraded <- true;
        slot.intent_ns <- max_int;
        slot.fire_issued_at <- max_int;
        t.n_degraded_slots <- t.n_degraded_slots + 1;
        tr t ~name:"wd.slot_degraded" ~track:(slot_track slot) ~arg:slot.retries
      end
      else begin
        (* SENDUIPI was issued but nothing arrived within the grace:
           lost notification.  Re-issue with exponential backoff,
           escalating to UITT + SN repair from the second retry. *)
        if slot.retries = 0 then begin
          mark_detected t (now - slot.fire_issued_at);
          match t.faults with Some f -> Fault.mark_detected f.plan () | None -> ()
        end;
        slot.retries <- slot.retries + 1;
        t.n_retries <- t.n_retries + 1;
        tr t ~name:"wd.retry" ~track:(slot_track slot) ~arg:slot.retries;
        if slot.retries >= 2 then begin
          Hw.Uintr.repair_uitt t.sender slot.uitt_index;
          Hw.Uintr.repair_receiver slot.receiver
        end;
        issue t now slot ~count_fired:false;
        slot.next_retry_at <-
          now + wd.wd_grace_ns + (wd.wd_backoff_ns * (1 lsl min (slot.retries - 1) 16))
      end
    end
  end

(* Top-level recursion over the slot list: the watchdog poll allocates
   no [List.iter] closure. *)
let rec wd_check_slots t wd now = function
  | [] -> ()
  | slot :: rest ->
    wd_check_slot t wd now slot;
    wd_check_slots t wd now rest

let wd_loop t wd =
  if t.is_running && not t.core_dead then begin
    let now = Engine.Sim.now t.sim in
    wd_check_core t wd now;
    if not t.core_dead then wd_check_slots t wd now t.slots;
    if not t.core_dead then
      t.wd_ev <- Engine.Sim.after t.sim wd.wd_poll_ns t.k_wd
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?faults ?watchdog ?trace ?(fault_stall_ns = 50_000) sim ~uintr
    ?(config = default_config) () =
  if config.poll_ns <= 0 then invalid_arg "Utimer.create: poll_ns must be positive";
  let faults =
    match faults with
    | None -> None
    | Some f ->
      Some
        {
          f_stall = Fault.point f "utimer.stall";
          f_crash = Fault.point f "utimer.crash";
          f_slot_lost = Fault.point f "utimer.slot_lost";
          plan = f;
        }
  in
  let t =
    {
      sim;
      uintr;
      sender = Hw.Uintr.create_sender uintr ~name:"utimer" ();
      config;
      watchdog;
      faults;
      trace;
      fault_stall_ns;
      rng = Engine.Sim.fork_rng sim;
      slots = [];
      n_slots = 0;
      wheel =
        (match config.scan with
        | Linear -> None
        | Wheel -> Some (Timing_wheel.create ~tick:config.wheel_tick_ns ()));
      is_running = false;
      crashed = false;
      core_dead = false;
      failing_over = false;
      last_scan_ns = 0;
      spares_left = (match watchdog with Some w -> w.wd_spare_cores | None -> 0);
      loop_ev = Engine.Sim.null;
      wd_ev = Engine.Sim.null;
      k_loop = noop;
      k_wd = noop;
      scan_cost = 0;
      scan_expired = 0;
      on_degraded = None;
      n_fired = 0;
      n_detected = 0;
      n_recovered = 0;
      n_retries = 0;
      n_failovers = 0;
      n_degraded_slots = 0;
      lateness_stat = Stat.Summary.create ();
      detect_stat = Stat.Summary.create ();
    }
  in
  (* Handle fields rest at [Sim.null]; each callback clears its own
     handle first, so the cancel sites never touch a fired event. *)
  t.k_loop <-
    (fun () ->
      t.loop_ev <- Engine.Sim.null;
      loop t);
  (match watchdog with
  | Some wd ->
    t.k_wd <-
      (fun () ->
        t.wd_ev <- Engine.Sim.null;
        wd_loop t wd)
  | None -> ());
  t

let start t =
  if not t.is_running then begin
    t.is_running <- true;
    t.crashed <- false;
    t.core_dead <- false;
    t.failing_over <- false;
    t.last_scan_ns <- Engine.Sim.now t.sim;
    (* Restart after [stop]: surviving armed slots are re-armed exactly
       once; deadlines that lapsed while stopped fire on the first scan
       with zero-clamped lateness and are not double-counted. *)
    resync_slots t;
    loop t;
    match t.watchdog with Some wd -> wd_loop t wd | None -> ()
  end

let stop t =
  t.is_running <- false;
  Engine.Sim.cancel t.loop_ev;
  t.loop_ev <- Engine.Sim.null;
  Engine.Sim.cancel t.wd_ev;
  t.wd_ev <- Engine.Sim.null

let running t = t.is_running
let fired t = t.n_fired
let lateness t = t.lateness_stat
let slot_count t = t.n_slots
let spares_left t = t.spares_left

let health t =
  if t.core_dead || t.n_degraded_slots > 0 then Degraded
  else if t.n_failovers > 0 then Failed_over
  else Healthy

let watchdog_stats t =
  {
    wd_detected = t.n_detected;
    wd_recovered = t.n_recovered;
    wd_retries = t.n_retries;
    wd_failovers = t.n_failovers;
    wd_degraded_slots = t.n_degraded_slots;
    wd_detection_latency =
      (if Stat.Summary.count t.detect_stat = 0 then None
       else Some (Stat.Summary.report t.detect_stat));
  }

(* UMWAIT-parked polling measured at ~1.2 W (Sec V-B); a loop too hot
   to park approaches typical full-core active power. *)
let umwait_poll_watts = 1.2
let hot_poll_watts = 4.0
let umwait_wake_latency_ns = 200

let power_watts t =
  if t.config.poll_ns >= umwait_wake_latency_ns then umwait_poll_watts
  else hot_poll_watts

let energy_joules t ~duration_ns =
  if duration_ns < 0 then invalid_arg "Utimer.energy_joules: negative duration";
  power_watts t *. (float_of_int duration_ns /. 1e9)

let min_quantum_ns t =
  let p = Hw.Uintr.params t.uintr in
  t.config.poll_ns + p.Hw.Params.uintr_delivery_ns + p.Hw.Params.uintr_handler_entry_ns
