(** LibUtimer: the user-space preemption timer (Sec IV-A).

    A dedicated timer thread polls the TSC and compares it against
    {e deadline slots} — 64-byte-aligned memory locations that worker
    threads write their next-preemption TSC value into with a plain
    store ([utimer_arm_deadline]).  When a deadline passes, the timer
    thread issues SENDUIPI to that worker.

    The timer thread's work per scan iteration is modeled explicitly
    (loop overhead, per-slot inspection, SENDUIPI issue cost), so both
    its precision (Fig 12) and its scalability across slot counts
    (Fig 11, ablation AB1) are emergent.  Scanning can be linear (the
    paper's default) or through a {!Timing_wheel} (the paper's opt-in
    for large thread counts). *)

module Timing_wheel = Timing_wheel
(** Re-exported so library users reach the wheel as
    [Utimer.Timing_wheel]. *)

type scan_mode = Linear | Wheel

type config = {
  poll_ns : int;
      (** pause between scan iterations (UMWAIT period) *)
  per_slot_scan_ns : int;
      (** cost of inspecting one deadline slot (cacheline read, mostly
          L1-resident) *)
  loop_overhead_ns : int;  (** fixed per-iteration cost *)
  scan : scan_mode;
  wheel_tick_ns : int;  (** granularity when [scan = Wheel] *)
  contention_mean_ns : int;
      (** mean of an exponential stall occasionally injected into an
          iteration (models background kernel activity / stress-ng);
          0 disables *)
  contention_prob : float;  (** probability an iteration is stalled *)
}

val default_config : config

type t

type slot

val create : Engine.Sim.t -> uintr:Hw.Uintr.t -> ?config:config -> unit -> t

val register : t -> receiver:Hw.Uintr.receiver -> vector:int -> slot
(** [utimer_register]: allocate a deadline slot for a worker and wire a
    UITT entry to it. The slot starts disarmed. *)

val arm_after : slot -> ns:int -> unit
(** [utimer_arm_deadline]: set the deadline [ns] from now — one plain
    memory write, no syscall. Re-arming overwrites. *)

val arm_at : slot -> time_ns:int -> unit
(** Arm with an absolute simulation time. *)

val disarm : slot -> unit

val is_armed : slot -> bool

val start : t -> unit
(** Start the timer thread's poll loop. Idempotent. *)

val stop : t -> unit

val running : t -> bool

val fired : t -> int
(** Total preemption interrupts issued. *)

val lateness : t -> Stat.Summary.t
(** Distribution of (fire time − armed deadline) in ns — the timer's
    precision (Fig 12). *)

val slot_count : t -> int

val power_watts : t -> float
(** Estimated power draw of the dedicated timer core.  The paper
    measures ~1.2 W for the first timer core because the poll loop
    parks in UMWAIT between scans; a core that cannot UMWAIT (poll
    interval smaller than the wake latency) burns closer to full-core
    power. *)

val energy_joules : t -> duration_ns:int -> float
(** [power_watts] integrated over a run. *)

val min_quantum_ns : t -> int
(** The smallest usable time slice: one poll period plus delivery —
    the "3 µs minimum time slice" claim checks against this. *)
