(** LibUtimer: the user-space preemption timer (Sec IV-A).

    A dedicated timer thread polls the TSC and compares it against
    {e deadline slots} — 64-byte-aligned memory locations that worker
    threads write their next-preemption TSC value into with a plain
    store ([utimer_arm_deadline]).  When a deadline passes, the timer
    thread issues SENDUIPI to that worker.

    The timer thread's work per scan iteration is modeled explicitly
    (loop overhead, per-slot inspection, SENDUIPI issue cost), so both
    its precision (Fig 12) and its scalability across slot counts
    (Fig 11, ablation AB1) are emergent.  Scanning can be linear (the
    paper's default) or through a {!Timing_wheel} (the paper's opt-in
    for large thread counts).

    {2 Fault tolerance}

    The timer core sits on the critical path of every preemption, so it
    gets a recovery layer: an optional {e watchdog} loop that tracks the
    worker's {e intent} (the armed deadline, ground truth) independently
    of the scanned deadline word, confirms that every issued SENDUIPI
    actually delivered, re-issues lost interrupts with bounded
    exponential-backoff retry, fails over to a spare timer core when the
    scan loop stops making progress, and — once every spare and retry is
    exhausted — degrades gracefully (reports {!health} [Degraded] and
    invokes {!set_on_degraded}) instead of raising or hanging. *)

module Timing_wheel = Timing_wheel
(** Re-exported so library users reach the wheel as
    [Utimer.Timing_wheel]. *)

type scan_mode = Linear | Wheel

type config = {
  poll_ns : int;
      (** pause between scan iterations (UMWAIT period) *)
  per_slot_scan_ns : int;
      (** cost of inspecting one deadline slot (cacheline read, mostly
          L1-resident) *)
  loop_overhead_ns : int;  (** fixed per-iteration cost *)
  scan : scan_mode;
  wheel_tick_ns : int;  (** granularity when [scan = Wheel] *)
  contention_mean_ns : int;
      (** mean of an exponential stall occasionally injected into an
          iteration (models background kernel activity / stress-ng);
          0 disables *)
  contention_prob : float;  (** probability an iteration is stalled *)
}

val default_config : config

type watchdog = {
  wd_poll_ns : int;  (** watchdog check period *)
  wd_grace_ns : int;
      (** slack past a deadline (or past a SENDUIPI issue) before the
          watchdog calls it a miss; must exceed the worst natural
          delivery latency or the watchdog self-fires *)
  wd_max_retries : int;
      (** re-issue budget per episode; exhaustion degrades the slot *)
  wd_backoff_ns : int;  (** base of the exponential retry backoff *)
  wd_core_dead_ns : int;
      (** scan-loop silence that declares the timer core dead *)
  wd_spare_cores : int;  (** failover budget *)
  wd_failover_ns : int;  (** time for a spare core to take over *)
}

val default_watchdog : watchdog

type health =
  | Healthy
  | Failed_over  (** running on a spare core *)
  | Degraded
      (** out of spares, or some slot exhausted its retry budget *)

type wd_stats = {
  wd_detected : int;  (** anomalies noticed (lost fires, dead cores) *)
  wd_recovered : int;  (** anomalies repaired *)
  wd_retries : int;  (** SENDUIPI re-issues *)
  wd_failovers : int;  (** spare-core takeovers *)
  wd_degraded_slots : int;  (** slots that exhausted their retries *)
  wd_detection_latency : Stat.Summary.report option;
      (** anomaly onset → detection, ns *)
}

type t

type slot

val create :
  ?faults:Fault.t ->
  ?watchdog:watchdog ->
  ?trace:Obs.Trace.t ->
  ?fault_stall_ns:int ->
  Engine.Sim.t ->
  uintr:Hw.Uintr.t ->
  ?config:config ->
  unit ->
  t
(** Without [watchdog] the timer behaves exactly as the fault-free
    baseline: fire-and-forget, no recovery.

    When [trace] is supplied, the timer emits {!Obs.Trace.cat.Utimer}
    events: ["utimer.fire"] (arg = lateness ns) per issued preemption
    and ["utimer.scan"] (arg = iteration cost ns) per non-idle scan,
    plus watchdog episodes ["wd.core_dead"], ["wd.failover"],
    ["wd.recovered"], ["wd.degraded"], ["wd.late_fire"], ["wd.retry"]
    and ["wd.slot_degraded"].  Per-slot events use track
    [900 + uitt_index]; core-level events use track 999.

    When a fault plan is supplied, three injection points model
    timer-core failures:

    - ["utimer.stall"] — one scan iteration stalls for [fault_stall_ns]
      (default 50000), delaying every fire behind it;
    - ["utimer.crash"] — the scan loop goes dark and stops rescheduling
      (only a watchdog failover or {!stop}/{!start} brings it back);
    - ["utimer.slot_lost"] — an [arm_at] store to the deadline slot is
      lost: the worker believes the deadline is set, the scanner never
      sees it. *)

val register : t -> receiver:Hw.Uintr.receiver -> vector:int -> slot
(** [utimer_register]: allocate a deadline slot for a worker and wire a
    UITT entry to it. The slot starts disarmed. *)

val arm_after : slot -> ns:int -> unit
(** [utimer_arm_deadline]: set the deadline [ns] from now — one plain
    memory write, no syscall. Re-arming overwrites. *)

val arm_at : slot -> time_ns:int -> unit
(** Arm with an absolute simulation time.  A [time_ns] already in the
    past is legal: the slot fires on the next scan and its lateness is
    measured from the arm instant (zero-clamped). *)

val disarm : slot -> unit

val is_armed : slot -> bool
(** True while the worker-side intent is set (armed and not yet fired,
    or fired but delivery not yet confirmed under a watchdog). *)

val intent_ns : slot -> int option
(** The armed deadline as the worker believes it, if any — what a
    failover re-arms from. *)

val slot_degraded : slot -> bool
(** The slot exhausted its watchdog retry budget. *)

val start : t -> unit
(** Start the timer thread's poll loop (and the watchdog, if
    configured). Idempotent.  Restarting after {!stop} re-arms every
    surviving armed slot exactly once; deadlines that lapsed while
    stopped fire on the first scan with zero-clamped lateness and are
    not double-counted. *)

val stop : t -> unit
(** Stop the poll loop and watchdog.  Armed slots keep their intent;
    fires already in flight are suppressed. *)

val running : t -> bool

val fired : t -> int
(** Total preemption interrupts issued (watchdog re-issues of the same
    deadline are counted in {!watchdog_stats}, not here). *)

val lateness : t -> Stat.Summary.t
(** Distribution of (fire time − armed deadline) in ns — the timer's
    precision (Fig 12). *)

val slot_count : t -> int

val health : t -> health

val spares_left : t -> int

val watchdog_stats : t -> wd_stats

val set_on_degraded : t -> (unit -> unit) -> unit
(** Callback invoked once when the timer declares itself [Degraded] at
    the core level (crashed with no spares left) — the hook a server
    uses to fall back to kernel timers. *)

val power_watts : t -> float
(** Estimated power draw of the dedicated timer core.  The paper
    measures ~1.2 W for the first timer core because the poll loop
    parks in UMWAIT between scans; a core that cannot UMWAIT (poll
    interval smaller than the wake latency) burns closer to full-core
    power. *)

val energy_joules : t -> duration_ns:int -> float
(** [power_watts] integrated over a run. *)

val min_quantum_ns : t -> int
(** The smallest usable time slice: one poll period plus delivery —
    the "3 µs minimum time slice" claim checks against this. *)
