type 'a entry = {
  deadline : int;
  value : 'a;
  seq : int;
  mutable live : bool;
}

type 'a handle = 'a entry

type 'a t = {
  tick : int;
  levels : int;
  slots : int;
  (* wheel.(level).(slot) is an unordered bucket *)
  wheel : 'a entry list ref array array;
  mutable wnow : int;
  mutable seq : int;
  mutable live_count : int;
  mutable overdue : 'a entry list; (* inserted at/before wnow *)
}

let create ?(levels = 4) ?(slots_per_level = 64) ~tick () =
  if tick <= 0 then invalid_arg "Timing_wheel.create: tick must be positive";
  if levels <= 0 || slots_per_level <= 1 then
    invalid_arg "Timing_wheel.create: bad level/slot counts";
  {
    tick;
    levels;
    slots = slots_per_level;
    wheel = Array.init levels (fun _ -> Array.init slots_per_level (fun _ -> ref []));
    wnow = 0;
    seq = 0;
    live_count = 0;
    overdue = [];
  }

let now t = t.wnow

let span t level =
  (* Width of one slot at [level]. *)
  let rec pow acc n = if n = 0 then acc else pow (acc * t.slots) (n - 1) in
  t.tick * pow 1 level

let horizon t = t.wnow + (span t t.levels) - 1

let size t = t.live_count

(* Place a live entry into the bucket matching its deadline, seen from
   the current wheel time. *)
let place t e =
  let delta = e.deadline - t.wnow in
  if delta <= 0 then t.overdue <- e :: t.overdue
  else begin
    let rec find_level level =
      if level >= t.levels then invalid_arg "Timing_wheel.add: deadline beyond horizon"
      else if delta < span t (level + 1) then level
      else find_level (level + 1)
    in
    let level = find_level 0 in
    let width = span t level in
    (* Level 0 expires entries, so the cursor must reach the slot no
       earlier than the deadline (ceiling).  Higher levels only cascade
       entries down for re-placement, which must happen no later than
       the deadline (floor) — otherwise expiry could miss by up to a
       slot width. *)
    let slot =
      if level = 0 then (e.deadline + width - 1) / width mod t.slots
      else e.deadline / width mod t.slots
    in
    let bucket = t.wheel.(level).(slot) in
    bucket := e :: !bucket
  end

let add t ~deadline value =
  let e = { deadline; value; seq = t.seq; live = true } in
  t.seq <- t.seq + 1;
  place t e;
  t.live_count <- t.live_count + 1;
  e

let cancel t h =
  if h.live then begin
    h.live <- false;
    t.live_count <- t.live_count - 1
  end

(* Pull the entries out of a coarser-level slot and re-place them; they
   land in finer levels (or expire) now that the clock has advanced. *)
let cascade t level =
  if level < t.levels then begin
    let slot = t.wnow / span t level mod t.slots in
    let bucket = t.wheel.(level).(slot) in
    let entries = !bucket in
    bucket := [];
    List.iter (fun e -> if e.live then place t e) entries
  end

(* Level [l-1]'s cursor wrapped exactly when [wnow] is a multiple of
   level [l]'s slot width; cascade that level's current slot, and
   recurse upwards on coarser wraps. *)
let rec maybe_cascade t level =
  if level < t.levels && t.wnow mod span t level = 0 then begin
    cascade t level;
    maybe_cascade t (level + 1)
  end

let advance t ~upto =
  if upto < t.wnow then invalid_arg "Timing_wheel.advance: time moved backwards";
  let expired = ref [] in
  let take_overdue () =
    List.iter (fun e -> if e.live then expired := e :: !expired) t.overdue;
    t.overdue <- []
  in
  take_overdue ();
  while t.wnow + t.tick <= upto do
    (* Fast-forward across empty stretches. *)
    if t.live_count - List.length !expired = 0 then t.wnow <- upto
    else begin
      t.wnow <- t.wnow + t.tick;
      let idx0 = t.wnow / t.tick mod t.slots in
      maybe_cascade t 1;
      let bucket = t.wheel.(0).(idx0) in
      let entries = !bucket in
      bucket := [];
      List.iter
        (fun e ->
          if e.live then begin
            if e.deadline <= t.wnow then expired := e :: !expired else place t e
          end)
        entries;
      take_overdue ()
    end
  done;
  let out = !expired in
  t.live_count <- t.live_count - List.length out;
  List.iter (fun e -> e.live <- false) out;
  List.map (fun e -> e.value)
    (List.sort (fun a b -> compare (a.deadline, a.seq) (b.deadline, b.seq)) out)
