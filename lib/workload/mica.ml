type config = {
  n_keys : int;
  skew : float;
  set_fraction : float;
  get_base_ns : int;
  set_base_ns : int;
  hot_fraction : float;
  miss_cost_ns : int;
  max_misses : int;
  noise_mean_ns : int;
  noise_std_ns : int;
}

let default_config =
  {
    n_keys = 1_000_000;
    skew = 0.99;
    set_fraction = 0.05;
    get_base_ns = 700;
    set_base_ns = 1_000;
    hot_fraction = 0.01;
    miss_cost_ns = 350;
    max_misses = 8;
    noise_mean_ns = 120;
    noise_std_ns = 100;
  }

type t = { c : config; zipf : Zipf.t }

let create ?(config = default_config) () =
  if config.set_fraction < 0.0 || config.set_fraction > 1.0 then
    invalid_arg "Mica.create: set_fraction out of [0,1]";
  if config.hot_fraction <= 0.0 || config.hot_fraction > 1.0 then
    invalid_arg "Mica.create: hot_fraction out of (0,1]";
  { c = config; zipf = Zipf.create ~n:config.n_keys ~theta:config.skew }

(* Number of memory accesses missing cache for a key of the given
   popularity rank: hot keys hit; beyond the hot set, the chance and
   depth of misses grow with log-rank (index + value chains). *)
let misses_for_rank c rng rank =
  let hot_keys = int_of_float (c.hot_fraction *. float_of_int c.n_keys) in
  if rank < max hot_keys 1 then 0
  else begin
    let coldness =
      log (float_of_int (rank + 1) /. float_of_int (max hot_keys 1))
      /. log (float_of_int c.n_keys /. float_of_int (max hot_keys 1))
    in
    let expected = coldness *. float_of_int c.max_misses in
    let jittered = expected +. Engine.Rng.normal rng ~mu:0.0 ~sigma:0.8 in
    max 0 (min c.max_misses (int_of_float jittered))
  end

let sample_ns t rng =
  let c = t.c in
  let rank = Zipf.sample t.zipf rng in
  let base =
    if Engine.Rng.float rng < c.set_fraction then c.set_base_ns else c.get_base_ns
  in
  let misses = misses_for_rank c rng rank in
  let noise =
    let m = float_of_int c.noise_mean_ns and s = float_of_int c.noise_std_ns in
    let sigma2 = log (1.0 +. (s *. s /. (m *. m))) in
    Engine.Rng.lognormal rng ~mu:(log m -. (sigma2 /. 2.0)) ~sigma:(sqrt sigma2)
  in
  max 1 (base + (misses * c.miss_cost_ns) + int_of_float noise)

let source t =
  Source.of_fn ~name:"mica-kvs" (fun rng ~now:_ ->
      (sample_ns t rng, Request.Latency_critical))
