type shape =
  | Constant of int
  | Exponential of int
  | Bimodal of { short_ns : int; long_ns : int; long_fraction : float }
  | Lognormal of { mean_ns : int; std_ns : int }
  | Pareto of { scale_ns : int; shape : float }
  | Phased of { switch_after : int; first : t; second : t }

and t = { shape : shape; dist_name : string }

let constant ns =
  if ns <= 0 then invalid_arg "Service_dist.constant: non-positive";
  { shape = Constant ns; dist_name = Printf.sprintf "const(%dns)" ns }

let exponential ~mean_ns =
  if mean_ns <= 0 then invalid_arg "Service_dist.exponential: non-positive mean";
  { shape = Exponential mean_ns; dist_name = Printf.sprintf "exp(%.1fus)" (float_of_int mean_ns /. 1e3) }

let bimodal ~short_ns ~long_ns ~long_fraction =
  if short_ns <= 0 || long_ns <= 0 then invalid_arg "Service_dist.bimodal: non-positive mode";
  if long_fraction < 0.0 || long_fraction > 1.0 then
    invalid_arg "Service_dist.bimodal: fraction out of [0,1]";
  {
    shape = Bimodal { short_ns; long_ns; long_fraction };
    dist_name =
      Printf.sprintf "bimodal(%.1f%%x%.1fus,%.1f%%x%.1fus)"
        ((1.0 -. long_fraction) *. 100.0)
        (float_of_int short_ns /. 1e3)
        (long_fraction *. 100.0)
        (float_of_int long_ns /. 1e3);
  }

let lognormal ~mean_ns ~std_ns =
  if mean_ns <= 0 || std_ns < 0 then invalid_arg "Service_dist.lognormal: bad parameters";
  {
    shape = Lognormal { mean_ns; std_ns };
    dist_name = Printf.sprintf "lognorm(%dns,%dns)" mean_ns std_ns;
  }

let pareto ~scale_ns ~shape =
  if scale_ns <= 0 || shape <= 0.0 then invalid_arg "Service_dist.pareto: bad parameters";
  { shape = Pareto { scale_ns; shape }; dist_name = Printf.sprintf "pareto(%dns,%.2f)" scale_ns shape }

let phased ~switch_after ~first ~second =
  {
    shape = Phased { switch_after; first; second };
    dist_name = Printf.sprintf "phased(%s->%s)" first.dist_name second.dist_name;
  }

let rec sample t rng ~now =
  let v =
    match t.shape with
    | Constant ns -> ns
    | Exponential mean_ns ->
      int_of_float (Engine.Rng.exponential rng ~mean:(float_of_int mean_ns))
    | Bimodal { short_ns; long_ns; long_fraction } ->
      if Engine.Rng.float rng < long_fraction then long_ns else short_ns
    | Lognormal { mean_ns; std_ns } ->
      let m = float_of_int mean_ns and s = float_of_int std_ns in
      let sigma2 = log (1.0 +. (s *. s /. (m *. m))) in
      let mu = log m -. (sigma2 /. 2.0) in
      int_of_float (Engine.Rng.lognormal rng ~mu ~sigma:(sqrt sigma2))
    | Pareto { scale_ns; shape } ->
      int_of_float (Engine.Rng.pareto rng ~scale:(float_of_int scale_ns) ~shape)
    | Phased { switch_after; first; second } ->
      if now < switch_after then sample first rng ~now else sample second rng ~now
  in
  max v 1

let rec mean_ns t ~now =
  match t.shape with
  | Constant ns -> float_of_int ns
  | Exponential mean -> float_of_int mean
  | Bimodal { short_ns; long_ns; long_fraction } ->
    ((1.0 -. long_fraction) *. float_of_int short_ns)
    +. (long_fraction *. float_of_int long_ns)
  | Lognormal { mean_ns = m; _ } -> float_of_int m
  | Pareto { scale_ns; shape } ->
    if shape <= 1.0 then infinity
    else shape *. float_of_int scale_ns /. (shape -. 1.0)
  | Phased { switch_after; first; second } ->
    if now < switch_after then mean_ns first ~now else mean_ns second ~now

let name t = t.dist_name

let workload_a1 = bimodal ~short_ns:500 ~long_ns:500_000 ~long_fraction:0.005
let workload_a2 = bimodal ~short_ns:5_000 ~long_ns:500_000 ~long_fraction:0.005
let workload_b = exponential ~mean_ns:5_000

let workload_c ~duration_ns =
  phased ~switch_after:(duration_ns / 2) ~first:workload_a1 ~second:workload_b
