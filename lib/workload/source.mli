(** Request sources: samplers of (service time, class).

    A source abstracts "what kind of work arrives": a plain service-time
    distribution, an application model ({!Mica}, {!Zlib_be}), or a
    weighted mix of sources — the colocation experiments issue 98%
    latency-critical and 2% best-effort requests from one mixed
    source. *)

type t

val of_dist : Service_dist.t -> cls:Request.cls -> t

val of_fn : name:string -> (Engine.Rng.t -> now:int -> int * Request.cls) -> t
(** Wrap a custom sampler; it must return a positive service time. *)

val mix : (float * t) list -> t
(** Weighted mixture. Weights must be positive; they are normalized.
    Raises on an empty list. *)

val tenants : theta:float -> t list -> t
(** A Zipf-skewed multi-tenant mix: tenant [i] (list order, 0 = most
    popular) is drawn with Zipfian probability of skew [theta] — the
    production-shaped "one hot tenant, a long tail of cold ones" traffic
    that cluster dispatch policies must absorb.  [theta = 0] is a
    uniform mix. *)

val draw : t -> Engine.Rng.t -> now:int -> int * Request.cls

val name : t -> string
