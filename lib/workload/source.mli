(** Request sources: samplers of (service time, class).

    A source abstracts "what kind of work arrives": a plain service-time
    distribution, an application model ({!Mica}, {!Zlib_be}), or a
    weighted mix of sources — the colocation experiments issue 98%
    latency-critical and 2% best-effort requests from one mixed
    source. *)

type t

val of_dist : Service_dist.t -> cls:Request.cls -> t

val of_fn : name:string -> (Engine.Rng.t -> now:int -> int * Request.cls) -> t
(** Wrap a custom sampler; it must return a positive service time. *)

val mix : (float * t) list -> t
(** Weighted mixture. Weights must be positive; they are normalized.
    Raises on an empty list. *)

val draw : t -> Engine.Rng.t -> now:int -> int * Request.cls

val name : t -> string
