(** Request service-time distributions.

    The paper's evaluation workloads (Sec V-A):
    - A1: bimodal, 99.5% × 0.5 µs + 0.5% × 500 µs   (heavy-tailed)
    - A2: bimodal, 99.5% × 5 µs  + 0.5% × 500 µs   (heavy-tailed)
    - B:  exponential, mean 5 µs                    (light-tailed)
    - C:  dynamic: first half A1, second half B     (distribution shift)

    plus the generic constructors used by the microbenchmarks and the
    colocation experiments. *)

type t

val constant : int -> t
(** Every request takes exactly the given ns. *)

val exponential : mean_ns:int -> t

val bimodal : short_ns:int -> long_ns:int -> long_fraction:float -> t
(** [long_fraction] in [0,1] of requests take [long_ns]. *)

val lognormal : mean_ns:int -> std_ns:int -> t

val pareto : scale_ns:int -> shape:float -> t

val phased : switch_after:int -> first:t -> second:t -> t
(** Distribution shift: requests arriving before the simulation time
    [switch_after] (ns) draw from [first], later ones from [second] —
    workload C. *)

val sample : t -> Engine.Rng.t -> now:int -> int
(** Draw a service time (ns, >= 1). *)

val mean_ns : t -> now:int -> float
(** Analytic mean of the distribution (at simulation time [now], which
    matters only for [phased]). *)

val name : t -> string

(* The paper's named workloads. *)

val workload_a1 : t
val workload_a2 : t
val workload_b : t

val workload_c : duration_ns:int -> t
(** A1 for the first half of a run of [duration_ns], then B. *)
