(** MICA key-value-store service-time model (Sec V-C, Table V).

    The paper runs MICA with a 5/95 SET/GET mix under the original MICA
    zipfian key generator at skewness 0.99, yielding a median request
    processing time of ~1 µs.  We model per-request service time as:

    - an operation base cost (GET cheaper than SET),
    - a cache-residency term driven by key popularity: the hottest keys
      hit in cache, cold keys pay extra memory accesses — this is how
      skew translates into service-time dispersion,
    - a small lognormal noise term.

    This preserves what the colocation experiments need from MICA: a
    sub-µs-median, right-skewed LC service time distribution. *)

type config = {
  n_keys : int;
  skew : float;  (** zipfian theta; paper: 0.99 *)
  set_fraction : float;  (** paper: 0.05 *)
  get_base_ns : int;
  set_base_ns : int;
  hot_fraction : float;  (** fraction of key ranks considered cache-resident *)
  miss_cost_ns : int;  (** per-miss DRAM access cost *)
  max_misses : int;
  noise_mean_ns : int;
  noise_std_ns : int;
}

val default_config : config
(** Calibrated so the solo median is ~1 µs. *)

type t

val create : ?config:config -> unit -> t

val sample_ns : t -> Engine.Rng.t -> int
(** Service time of one request. *)

val source : t -> Source.t
(** As a latency-critical request source. *)
