type config = { size_kb : float; per_kb_ns : int; variability : float }

let default_config = { size_kb = 25.0; per_kb_ns = 4_000; variability = 0.25 }

type t = { c : config }

let create ?(config = default_config) () =
  if config.size_kb <= 0.0 then invalid_arg "Zlib_be.create: size must be positive";
  if config.per_kb_ns <= 0 then invalid_arg "Zlib_be.create: per_kb_ns must be positive";
  if config.variability < 0.0 then invalid_arg "Zlib_be.create: negative variability";
  { c = config }

let sample_ns t rng =
  let c = t.c in
  let median = c.size_kb *. float_of_int c.per_kb_ns in
  let factor =
    if c.variability = 0.0 then 1.0
    else begin
      (* Lognormal with median 1 — the median stays at [median]. *)
      let sigma = c.variability in
      Engine.Rng.lognormal rng ~mu:0.0 ~sigma
    end
  in
  max 1 (int_of_float (median *. factor))

let source t =
  Source.of_fn ~name:"zlib-be" (fun rng ~now:_ -> (sample_ns t rng, Request.Best_effort))
