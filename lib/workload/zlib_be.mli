(** zlib compression best-effort job model (Sec V-C, Table V).

    The paper's BE workload compresses 25 kB of raw data per request at
    a median latency of 100 µs.  Compression time scales with input size
    and varies with data compressibility; we model it as
    [per_kb_ns × size_kb × lognormal(compressibility)]. *)

type config = {
  size_kb : float;  (** paper: 25 kB *)
  per_kb_ns : int;  (** median per-kB compression cost *)
  variability : float;  (** coefficient of variation of compressibility *)
}

val default_config : config
(** Calibrated so the solo median is ~100 µs. *)

type t

val create : ?config:config -> unit -> t

val sample_ns : t -> Engine.Rng.t -> int

val source : t -> Source.t
(** As a best-effort request source. *)
