type cls = Latency_critical | Best_effort

let cls_name = function Latency_critical -> "LC" | Best_effort -> "BE"

type t = { id : int; arrival_ns : int; service_ns : int; cls : cls }

let make ~id ~arrival_ns ~service_ns ~cls =
  if arrival_ns < 0 then invalid_arg "Request.make: negative arrival";
  if service_ns <= 0 then invalid_arg "Request.make: non-positive service";
  { id; arrival_ns; service_ns; cls }

let pp fmt r =
  Format.fprintf fmt "#%d[%s arr=%dns svc=%dns]" r.id (cls_name r.cls) r.arrival_ns
    r.service_ns
