type cls = Latency_critical | Best_effort

let cls_name = function Latency_critical -> "LC" | Best_effort -> "BE"

type t = {
  mutable id : int;
  mutable arrival_ns : int;
  mutable service_ns : int;
  mutable cls : cls;
  mutable pooled : bool;
}

let check ~arrival_ns ~service_ns =
  if arrival_ns < 0 then invalid_arg "Request.make: negative arrival";
  if service_ns <= 0 then invalid_arg "Request.make: non-positive service"

let make ~id ~arrival_ns ~service_ns ~cls =
  check ~arrival_ns ~service_ns;
  { id; arrival_ns; service_ns; cls; pooled = false }

let pp fmt r =
  Format.fprintf fmt "#%d[%s arr=%dns svc=%dns]" r.id (cls_name r.cls) r.arrival_ns
    r.service_ns

module Pool = struct
  type req = t

  type t = {
    mutable free : req array; (* [||] until the first release *)
    mutable n_free : int;
  }

  let create () = { free = [||]; n_free = 0 }

  let free_count p = p.n_free

  let acquire p ~id ~arrival_ns ~service_ns ~cls =
    check ~arrival_ns ~service_ns;
    if p.n_free > 0 then begin
      p.n_free <- p.n_free - 1;
      let r = p.free.(p.n_free) in
      r.id <- id;
      r.arrival_ns <- arrival_ns;
      r.service_ns <- service_ns;
      r.cls <- cls;
      r.pooled <- true;
      r
    end
    else { id; arrival_ns; service_ns; cls; pooled = true }

  (* The [pooled] flag makes release idempotent and a no-op on
     caller-owned requests ([make], injected traces), so the runtime
     can release unconditionally at its single retirement points. *)
  let release p r =
    if r.pooled then begin
      r.pooled <- false;
      let cap = Array.length p.free in
      if p.n_free = cap then
        if cap = 0 then p.free <- Array.make 64 r
        else begin
          let free = Array.make (2 * cap) r in
          Array.blit p.free 0 free 0 cap;
          p.free <- free
        end;
      p.free.(p.n_free) <- r;
      p.n_free <- p.n_free + 1
    end
end
