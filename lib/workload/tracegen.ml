let generate ?(seed = 7L) ~arrival ~source ~duration_ns () =
  if duration_ns <= 0 then invalid_arg "Tracegen.generate: non-positive duration";
  let rng = Engine.Rng.create seed in
  let rec collect acc id now =
    let now = now + Arrival.next_gap arrival rng ~now in
    if now >= duration_ns then List.rev acc
    else begin
      let service_ns, cls = Source.draw source rng ~now in
      let r = Request.make ~id ~arrival_ns:now ~service_ns ~cls in
      collect (r :: acc) (id + 1) now
    end
  in
  collect [] 0 0

let offered_load ?seed ~arrival ~source ~duration_ns ~cores () =
  if cores <= 0 then invalid_arg "Tracegen.offered_load: cores must be positive";
  let trace = generate ?seed ~arrival ~source ~duration_ns () in
  let total_service =
    List.fold_left (fun acc r -> acc + r.Request.service_ns) 0 trace
  in
  float_of_int total_service /. (float_of_int duration_ns *. float_of_int cores)
