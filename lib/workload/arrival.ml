type kind =
  | Poisson of float
  | Uniform of float
  | Bursty of {
      base_rate : float;
      spike_rate : float;
      period_ns : int;
      spike_fraction : float;
    }
  | Flash of {
      base_rate : float;
      peak_rate : float;
      start_ns : int;
      ramp_ns : int;
      hold_ns : int;
      decay_ns : int;
    }
  | Piecewise of (int * t) list

and t = { kind : kind; arr_name : string }

let check_rate r ctx = if r <= 0.0 then invalid_arg (ctx ^ ": rate must be positive")

let poisson ~rate_per_sec =
  check_rate rate_per_sec "Arrival.poisson";
  { kind = Poisson rate_per_sec; arr_name = Printf.sprintf "poisson(%.0f/s)" rate_per_sec }

let uniform ~rate_per_sec =
  check_rate rate_per_sec "Arrival.uniform";
  { kind = Uniform rate_per_sec; arr_name = Printf.sprintf "uniform(%.0f/s)" rate_per_sec }

let bursty ~base_rate_per_sec ~spike_rate_per_sec ~period_ns ~spike_fraction =
  check_rate base_rate_per_sec "Arrival.bursty";
  check_rate spike_rate_per_sec "Arrival.bursty";
  if period_ns <= 0 then invalid_arg "Arrival.bursty: period must be positive";
  if spike_fraction < 0.0 || spike_fraction > 1.0 then
    invalid_arg "Arrival.bursty: spike_fraction out of [0,1]";
  {
    kind =
      Bursty
        {
          base_rate = base_rate_per_sec;
          spike_rate = spike_rate_per_sec;
          period_ns;
          spike_fraction;
        };
    arr_name =
      Printf.sprintf "bursty(%.0f->%.0f/s)" base_rate_per_sec spike_rate_per_sec;
  }

let flash_crowd ~base_rate_per_sec ~peak_rate_per_sec ~start_ns ~ramp_ns ~hold_ns
    ~decay_ns =
  check_rate base_rate_per_sec "Arrival.flash_crowd";
  check_rate peak_rate_per_sec "Arrival.flash_crowd";
  if peak_rate_per_sec < base_rate_per_sec then
    invalid_arg "Arrival.flash_crowd: peak below base";
  if start_ns < 0 then invalid_arg "Arrival.flash_crowd: negative start";
  if ramp_ns < 0 || hold_ns < 0 || decay_ns < 0 then
    invalid_arg "Arrival.flash_crowd: negative phase length";
  {
    kind =
      Flash
        {
          base_rate = base_rate_per_sec;
          peak_rate = peak_rate_per_sec;
          start_ns;
          ramp_ns;
          hold_ns;
          decay_ns;
        };
    arr_name = Printf.sprintf "flash(%.0f->%.0f/s)" base_rate_per_sec peak_rate_per_sec;
  }

let piecewise segments =
  if segments = [] then invalid_arg "Arrival.piecewise: empty";
  { kind = Piecewise segments; arr_name = "piecewise" }

let rec rate_at t ~now =
  match t.kind with
  | Poisson r | Uniform r -> r
  | Bursty { base_rate; spike_rate; period_ns; spike_fraction } ->
    let phase = float_of_int (now mod period_ns) /. float_of_int period_ns in
    if phase < spike_fraction then spike_rate else base_rate
  | Flash { base_rate; peak_rate; start_ns; ramp_ns; hold_ns; decay_ns } ->
    (* Linear ramp up, hold at the peak, linear decay back to base —
       one flash-crowd envelope. *)
    if now < start_ns then base_rate
    else if now < start_ns + ramp_ns then
      let f = float_of_int (now - start_ns) /. float_of_int ramp_ns in
      base_rate +. (f *. (peak_rate -. base_rate))
    else if now < start_ns + ramp_ns + hold_ns then peak_rate
    else if now < start_ns + ramp_ns + hold_ns + decay_ns then
      let f =
        float_of_int (now - start_ns - ramp_ns - hold_ns) /. float_of_int decay_ns
      in
      peak_rate -. (f *. (peak_rate -. base_rate))
    else base_rate
  | Piecewise segments ->
    let rec pick = function
      | [] -> assert false
      | [ (_, p) ] -> rate_at p ~now
      | (until_ns, p) :: rest -> if now < until_ns then rate_at p ~now else pick rest
    in
    pick segments

let rec next_gap t rng ~now =
  let gap =
    match t.kind with
    | Poisson r -> int_of_float (Engine.Rng.exponential rng ~mean:(1e9 /. r))
    | Uniform r -> int_of_float (1e9 /. r)
    | Bursty _ | Flash _ ->
      (* Sample from the instantaneous rate; fine-grained enough since
         spikes and ramps last many inter-arrival times. *)
      let r = rate_at t ~now in
      int_of_float (Engine.Rng.exponential rng ~mean:(1e9 /. r))
    | Piecewise segments ->
      let rec pick = function
        | [] -> assert false
        | [ (_, p) ] -> next_gap p rng ~now
        | (until_ns, p) :: rest -> if now < until_ns then next_gap p rng ~now else pick rest
      in
      pick segments
  in
  max gap 1

let name t = t.arr_name
