type kind =
  | Poisson of float
  | Uniform of float
  | Bursty of {
      base_rate : float;
      spike_rate : float;
      period_ns : int;
      spike_fraction : float;
    }
  | Flash of {
      base_rate : float;
      peak_rate : float;
      start_ns : int;
      ramp_ns : int;
      hold_ns : int;
      decay_ns : int;
    }
  | Piecewise of (int * t) list
  | Diurnal of { base_rate : float; amplitude : float; period_ns : int }
  | Mmpp of {
      rates : float array;
      mean_hold_ns : int;
      mseed : int64;
      (* memo of the epoch covering the last query; the walk from epoch
         0 is deterministic, so the memo is an O(1)-amortized cursor,
         never a source of nondeterminism *)
      mutable m_epoch : int;
      mutable m_start : int;
      mutable m_end : int;
    }

and t = { kind : kind; arr_name : string }

let check_rate r ctx = if r <= 0.0 then invalid_arg (ctx ^ ": rate must be positive")

let poisson ~rate_per_sec =
  check_rate rate_per_sec "Arrival.poisson";
  { kind = Poisson rate_per_sec; arr_name = Printf.sprintf "poisson(%.0f/s)" rate_per_sec }

let uniform ~rate_per_sec =
  check_rate rate_per_sec "Arrival.uniform";
  { kind = Uniform rate_per_sec; arr_name = Printf.sprintf "uniform(%.0f/s)" rate_per_sec }

let bursty ~base_rate_per_sec ~spike_rate_per_sec ~period_ns ~spike_fraction =
  check_rate base_rate_per_sec "Arrival.bursty";
  check_rate spike_rate_per_sec "Arrival.bursty";
  if period_ns <= 0 then invalid_arg "Arrival.bursty: period must be positive";
  if spike_fraction < 0.0 || spike_fraction > 1.0 then
    invalid_arg "Arrival.bursty: spike_fraction out of [0,1]";
  {
    kind =
      Bursty
        {
          base_rate = base_rate_per_sec;
          spike_rate = spike_rate_per_sec;
          period_ns;
          spike_fraction;
        };
    arr_name =
      Printf.sprintf "bursty(%.0f->%.0f/s)" base_rate_per_sec spike_rate_per_sec;
  }

let flash_crowd ~base_rate_per_sec ~peak_rate_per_sec ~start_ns ~ramp_ns ~hold_ns
    ~decay_ns =
  check_rate base_rate_per_sec "Arrival.flash_crowd";
  check_rate peak_rate_per_sec "Arrival.flash_crowd";
  if peak_rate_per_sec < base_rate_per_sec then
    invalid_arg "Arrival.flash_crowd: peak below base";
  if start_ns < 0 then invalid_arg "Arrival.flash_crowd: negative start";
  if ramp_ns < 0 || hold_ns < 0 || decay_ns < 0 then
    invalid_arg "Arrival.flash_crowd: negative phase length";
  {
    kind =
      Flash
        {
          base_rate = base_rate_per_sec;
          peak_rate = peak_rate_per_sec;
          start_ns;
          ramp_ns;
          hold_ns;
          decay_ns;
        };
    arr_name = Printf.sprintf "flash(%.0f->%.0f/s)" base_rate_per_sec peak_rate_per_sec;
  }

let piecewise segments =
  if segments = [] then invalid_arg "Arrival.piecewise: empty";
  { kind = Piecewise segments; arr_name = "piecewise" }

let diurnal ~base_rate_per_sec ~amplitude ~period_ns =
  check_rate base_rate_per_sec "Arrival.diurnal";
  if amplitude < 0.0 || amplitude >= 1.0 then
    invalid_arg "Arrival.diurnal: amplitude out of [0,1)";
  if period_ns <= 0 then invalid_arg "Arrival.diurnal: period must be positive";
  {
    kind = Diurnal { base_rate = base_rate_per_sec; amplitude; period_ns };
    arr_name = Printf.sprintf "diurnal(%.0f/s±%.0f%%)" base_rate_per_sec (100.0 *. amplitude);
  }

let mmpp ~rates_per_sec ~mean_hold_ns ~seed =
  if Array.length rates_per_sec < 2 then invalid_arg "Arrival.mmpp: need at least 2 states";
  Array.iter (fun r -> check_rate r "Arrival.mmpp") rates_per_sec;
  if mean_hold_ns <= 0 then invalid_arg "Arrival.mmpp: mean hold must be positive";
  {
    kind =
      Mmpp
        {
          rates = Array.copy rates_per_sec;
          mean_hold_ns;
          mseed = seed;
          m_epoch = -1;
          m_start = 0;
          m_end = 0;
        };
    arr_name =
      Printf.sprintf "mmpp(%d states,%.0f-%.0f/s)" (Array.length rates_per_sec)
        (Array.fold_left min infinity rates_per_sec)
        (Array.fold_left max 0.0 rates_per_sec);
  }

(* Epoch [k]'s hold time is a pure function of (seed, k): a fresh
   SplitMix64 stream keyed by the epoch index.  The modulating chain is
   therefore shareable across runs and immune to query order. *)
let mmpp_hold ~mseed ~mean_hold_ns k =
  let key = Int64.logxor mseed (Int64.mul (Int64.of_int (k + 1)) 0x9E3779B97F4A7C15L) in
  let rng = Engine.Rng.create key in
  max 1 (int_of_float (Engine.Rng.exponential rng ~mean:(float_of_int mean_hold_ns)))

let mmpp_rate m ~now =
  match m with
  | Mmpp mm ->
    if mm.m_epoch < 0 || now < mm.m_start then begin
      mm.m_epoch <- 0;
      mm.m_start <- 0;
      mm.m_end <- mmpp_hold ~mseed:mm.mseed ~mean_hold_ns:mm.mean_hold_ns 0
    end;
    while now >= mm.m_end do
      mm.m_epoch <- mm.m_epoch + 1;
      mm.m_start <- mm.m_end;
      mm.m_end <- mm.m_end + mmpp_hold ~mseed:mm.mseed ~mean_hold_ns:mm.mean_hold_ns mm.m_epoch
    done;
    mm.rates.(mm.m_epoch mod Array.length mm.rates)
  | _ -> assert false

let rec rate_at t ~now =
  match t.kind with
  | Poisson r | Uniform r -> r
  | Bursty { base_rate; spike_rate; period_ns; spike_fraction } ->
    let phase = float_of_int (now mod period_ns) /. float_of_int period_ns in
    if phase < spike_fraction then spike_rate else base_rate
  | Flash { base_rate; peak_rate; start_ns; ramp_ns; hold_ns; decay_ns } ->
    (* Linear ramp up, hold at the peak, linear decay back to base —
       one flash-crowd envelope. *)
    if now < start_ns then base_rate
    else if now < start_ns + ramp_ns then
      let f = float_of_int (now - start_ns) /. float_of_int ramp_ns in
      base_rate +. (f *. (peak_rate -. base_rate))
    else if now < start_ns + ramp_ns + hold_ns then peak_rate
    else if now < start_ns + ramp_ns + hold_ns + decay_ns then
      let f =
        float_of_int (now - start_ns - ramp_ns - hold_ns) /. float_of_int decay_ns
      in
      peak_rate -. (f *. (peak_rate -. base_rate))
    else base_rate
  | Piecewise segments ->
    let rec pick = function
      | [] -> assert false
      | [ (_, p) ] -> rate_at p ~now
      | (until_ns, p) :: rest -> if now < until_ns then rate_at p ~now else pick rest
    in
    pick segments
  | Diurnal { base_rate; amplitude; period_ns } ->
    let phase = 2.0 *. Float.pi *. float_of_int (now mod period_ns) /. float_of_int period_ns in
    base_rate *. (1.0 +. (amplitude *. sin phase))
  | Mmpp _ -> mmpp_rate t.kind ~now

let rec next_gap t rng ~now =
  let gap =
    match t.kind with
    | Poisson r -> int_of_float (Engine.Rng.exponential rng ~mean:(1e9 /. r))
    | Uniform r -> int_of_float (1e9 /. r)
    | Bursty _ | Flash _ | Diurnal _ | Mmpp _ ->
      (* Sample from the instantaneous rate; fine-grained enough since
         spikes, ramps and modulation epochs last many inter-arrival
         times. *)
      let r = rate_at t ~now in
      int_of_float (Engine.Rng.exponential rng ~mean:(1e9 /. r))
    | Piecewise segments ->
      let rec pick = function
        | [] -> assert false
        | [ (_, p) ] -> next_gap p rng ~now
        | (until_ns, p) :: rest -> if now < until_ns then next_gap p rng ~now else pick rest
      in
      pick segments
  in
  max gap 1

let name t = t.arr_name
