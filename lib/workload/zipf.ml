type t = {
  n : int;
  theta : float;
  zetan : float;
  alpha : float;
  eta : float;
  zeta2 : float;
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. (float_of_int i ** theta))
  done;
  !acc

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 || theta >= 1.0 then invalid_arg "Zipf.create: theta out of [0,1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta))) /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; zetan; alpha; eta; zeta2 }

(* Gray et al.'s quick zipfian sampler as used by YCSB / MICA. *)
let sample t rng =
  let u = Engine.Rng.float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** t.theta) then 1
  else
    let rank =
      int_of_float
        (float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha))
    in
    min rank (t.n - 1)

let n t = t.n
let probability t i =
  if i < 0 || i >= t.n then invalid_arg "Zipf.probability: rank out of range";
  1.0 /. ((float_of_int (i + 1) ** t.theta) *. t.zetan)
