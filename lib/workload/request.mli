(** Request records.

    A request is the unit of scheduling throughout the reproduction: it
    arrives at some time, needs some amount of service, and belongs to a
    class (the colocation experiments of Sec V-C schedule
    latency-critical MICA requests alongside best-effort zlib jobs). *)

type cls = Latency_critical | Best_effort

val cls_name : cls -> string

type t = {
  id : int;
  arrival_ns : int;
  service_ns : int;
  cls : cls;
}

val make : id:int -> arrival_ns:int -> service_ns:int -> cls:cls -> t
(** Raises [Invalid_argument] on negative arrival or non-positive
    service time. *)

val pp : Format.formatter -> t -> unit
