(** Request records.

    A request is the unit of scheduling throughout the reproduction: it
    arrives at some time, needs some amount of service, and belongs to a
    class (the colocation experiments of Sec V-C schedule
    latency-critical MICA requests alongside best-effort zlib jobs).

    Fields are mutable only so records can be recycled through {!Pool}
    (DESIGN §9); no component mutates a request after it is admitted. *)

type cls = Latency_critical | Best_effort

val cls_name : cls -> string

type t = {
  mutable id : int;
  mutable arrival_ns : int;
  mutable service_ns : int;
  mutable cls : cls;
  mutable pooled : bool;  (** owned by a {!Pool} — {!Pool.release} recycles it *)
}

val make : id:int -> arrival_ns:int -> service_ns:int -> cls:cls -> t
(** A caller-owned (never recycled) request.  Raises [Invalid_argument]
    on negative arrival or non-positive service time. *)

val pp : Format.formatter -> t -> unit

(** Free-list recycling of request records.

    The server acquires one record per arrival and releases it at the
    request's single retirement point (completion or SLO cancellation),
    after which the record may back a later arrival — so holding a
    request past its completion callback observes the {e next}
    request's fields.  {!Pool.release} is a no-op on caller-owned
    records ([make], injected traces) and on double release. *)
module Pool : sig
  type req := t

  type t

  val create : unit -> t

  val acquire :
    t -> id:int -> arrival_ns:int -> service_ns:int -> cls:cls -> req
  (** Reuse a free record, or allocate when the pool is empty.  Same
      validation as {!make}. *)

  val release : t -> req -> unit
  (** Return a record to the pool.  Safe to call on any request:
      caller-owned and already-released records are left untouched. *)

  val free_count : t -> int
  (** Records currently sitting in the free list (test hook). *)
end
