(** Zipfian key-popularity sampler.

    The MICA experiments use the original MICA zipfian generator with
    skew 0.99 (Sec V-C); this is the standard YCSB-style rejection-free
    sampler with precomputed normalization. *)

type t

val create : n:int -> theta:float -> t
(** [n] keys with skew parameter [theta] in [0, 1). [theta = 0] is
    uniform. Raises on invalid parameters. *)

val sample : t -> Engine.Rng.t -> int
(** A key rank in [0, n), 0 = most popular. *)

val n : t -> int

val probability : t -> int -> float
(** The probability of drawing rank [i]. *)
