(** Materialized request traces.

    The server simulators generate arrivals on the fly (open loop), but
    tests, examples, and offline analysis want a concrete list of
    requests; this builds one from an arrival process and a source. *)

val generate :
  ?seed:int64 ->
  arrival:Arrival.t ->
  source:Source.t ->
  duration_ns:int ->
  unit ->
  Request.t list
(** All requests arriving in [0, duration_ns), in arrival order, with
    consecutive ids from 0. *)

val offered_load :
  ?seed:int64 ->
  arrival:Arrival.t ->
  source:Source.t ->
  duration_ns:int ->
  cores:int ->
  unit ->
  float
(** Estimated utilization the trace would impose on [cores] cores
    (total service time / (duration × cores)). *)
