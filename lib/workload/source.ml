type t = { src_name : string; draw_fn : Engine.Rng.t -> now:int -> int * Request.cls }

let of_dist dist ~cls =
  {
    src_name = Service_dist.name dist;
    draw_fn = (fun rng ~now -> (Service_dist.sample dist rng ~now, cls));
  }

let of_fn ~name draw_fn = { src_name = name; draw_fn }

let mix weighted =
  if weighted = [] then invalid_arg "Source.mix: empty";
  List.iter (fun (w, _) -> if w <= 0.0 then invalid_arg "Source.mix: non-positive weight") weighted;
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  let name =
    String.concat "+"
      (List.map (fun (w, s) -> Printf.sprintf "%.0f%%%s" (100.0 *. w /. total) s.src_name) weighted)
  in
  {
    src_name = name;
    draw_fn =
      (fun rng ~now ->
        let u = Engine.Rng.float rng *. total in
        let rec pick acc = function
          | [] -> assert false
          | [ (_, s) ] -> s.draw_fn rng ~now
          | (w, s) :: rest -> if u < acc +. w then s.draw_fn rng ~now else pick (acc +. w) rest
        in
        pick 0.0 weighted);
  }

let tenants ~theta members =
  if members = [] then invalid_arg "Source.tenants: empty";
  let arr = Array.of_list members in
  let z = Zipf.create ~n:(Array.length arr) ~theta in
  {
    src_name = Printf.sprintf "tenants(%d,theta=%.2f)" (Array.length arr) theta;
    draw_fn =
      (fun rng ~now ->
        let i = Zipf.sample z rng in
        arr.(i).draw_fn rng ~now);
  }

let draw t rng ~now =
  let service, cls = t.draw_fn rng ~now in
  if service <= 0 then invalid_arg "Source.draw: sampler returned non-positive service time";
  (service, cls)

let name t = t.src_name
