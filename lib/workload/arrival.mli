(** Open-loop arrival processes.

    The paper uses Poisson arrivals for the latency/throughput studies
    (Sec V-A) and a periodic bursty generator for the adaptive-policy
    study (Fig 14). *)

type t

val poisson : rate_per_sec:float -> t
(** Exponential inter-arrival times. *)

val uniform : rate_per_sec:float -> t
(** Deterministic, evenly spaced arrivals at the given rate. *)

val bursty :
  base_rate_per_sec:float ->
  spike_rate_per_sec:float ->
  period_ns:int ->
  spike_fraction:float ->
  t
(** Poisson arrivals whose rate alternates: within each [period_ns],
    the first [spike_fraction] of the period runs at [spike_rate] and
    the remainder at [base_rate] — the paper's spiky load generator
    (QPS 40 → 110 kRPS). *)

val flash_crowd :
  base_rate_per_sec:float ->
  peak_rate_per_sec:float ->
  start_ns:int ->
  ramp_ns:int ->
  hold_ns:int ->
  decay_ns:int ->
  t
(** A flash-crowd envelope: steady [base_rate] until [start_ns], a
    linear ramp to [peak_rate] over [ramp_ns], a hold of [hold_ns], and
    a linear decay back to base over [decay_ns].  The overload-control
    experiments drive the guard with a peak past capacity. *)

val piecewise : (int * t) list -> t
(** [(until_ns, process)] segments in increasing order of [until_ns];
    the process of the first segment whose bound exceeds the current
    time is used. The last segment extends to infinity regardless of
    its bound. *)

val diurnal : base_rate_per_sec:float -> amplitude:float -> period_ns:int -> t
(** Sinusoidally modulated Poisson arrivals:
    [rate(t) = base * (1 + amplitude * sin(2pi t / period))] — a
    compressed day/night cycle for fleet sizing studies.  [amplitude]
    must lie in [\[0, 1)]. *)

val mmpp : rates_per_sec:float array -> mean_hold_ns:int -> seed:int64 -> t
(** A Markov-modulated Poisson process: the rate walks the given states
    cyclically, holding each for an exponential time with mean
    [mean_hold_ns].  The modulating chain is a pure function of
    [seed] — independent of the arrival RNG and of query order — so two
    runs (or two fleets) driven by equal configs see the same rate
    trajectory.  Requires at least two states. *)

val next_gap : t -> Engine.Rng.t -> now:int -> int
(** Nanoseconds until the next arrival (>= 1). *)

val rate_at : t -> now:int -> float
(** Instantaneous arrival rate (per second) at time [now]. *)

val name : t -> string
