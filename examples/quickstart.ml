(* Quickstart: the paper's Fig 7 — a simple round-robin scheduler over N
   static user-level threads — running as REAL code on the effects-based
   fiber runtime.

   Each "request" is a CPU-bound loop with safepoints; the runtime
   preempts whichever function exceeds its time slice and the
   round-robin scheduler resumes the unfinished ones.

     dune exec examples/quickstart.exe *)

module F = Fiber_rt.Fiber
module Clock = Fiber_rt.Deadline_clock

let () =
  (* Deterministic demo on the virtual clock: each unit of work advances
     virtual time by 1us. A 50us quantum slices the long tasks. *)
  let clock = Clock.virtual_ () in
  let rt = F.create ~quantum_ns:50_000 ~clock () in
  let make_task name units =
    ( name,
      fun () ->
        for _ = 1 to units do
          Clock.advance clock 1_000;
          (* Safepoint: where an overdue deadline is observed. *)
          F.checkpoint rt
        done )
  in
  let tasks =
    [ make_task "short-a" 10; make_task "long-b" 400; make_task "short-c" 25; make_task "long-d" 300 ]
  in
  Format.printf "launching %d preemptible functions (quantum = 50us virtual)@."
    (List.length tasks);
  let order = ref [] in
  let wrapped =
    List.map
      (fun (name, body) () ->
        body ();
        order := name :: !order)
      tasks
  in
  let stats = Fiber_rt.Round_robin.run rt wrapped in
  Format.printf "completed=%d scheduler_rounds=%d preemptions=%d@."
    stats.Fiber_rt.Round_robin.completed stats.Fiber_rt.Round_robin.rounds
    stats.Fiber_rt.Round_robin.preemptions;
  Format.printf "completion order: %s@." (String.concat " -> " (List.rev !order));
  Format.printf
    "note how the short tasks finish first: preemption removed head-of-line blocking@.";

  (* The same API under wall-clock time with the dedicated timer domain
     (LibUtimer's timer core). On a single-CPU host the timer domain is
     scheduled by the kernel, so slices are coarser — exactly why the
     paper dedicates a core to the timer thread. *)
  let wall_rt = F.create ~quantum_ns:1_000_000 ~timer:F.Timer_domain ~clock:(Clock.wall ()) () in
  let spin ms () =
    let stop = Unix.gettimeofday () +. (float_of_int ms /. 1e3) in
    while Unix.gettimeofday () < stop do
      F.checkpoint wall_rt
    done
  in
  let wall_stats = Fiber_rt.Round_robin.run wall_rt [ spin 30; spin 30 ] in
  F.shutdown wall_rt;
  Format.printf "wall-clock run: completed=%d preemptions=%d (timer domain delivered them)@."
    wall_stats.Fiber_rt.Round_robin.completed wall_stats.Fiber_rt.Round_robin.preemptions
