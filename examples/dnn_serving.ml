(* Sec VII-C use case: concurrent DNN serving on CPU.  Interactive
   inference requests (LC, ~800us) share workers with large batch jobs
   (BE, ~20ms).  Without preemption the interactive p99 rides the batch
   jobs; with microsecond-scale preemption plus per-class quanta, the
   interactive path stays responsive while batch work proceeds; an
   interactive SLO with cancellation sheds doomed requests.

     dune exec examples/dnn_serving.exe *)

let us = Engine.Units.us
let ms = Engine.Units.ms

let interactive =
  Workload.Source.of_dist
    (Workload.Service_dist.lognormal ~mean_ns:(us 800) ~std_ns:(us 300))
    ~cls:Workload.Request.Latency_critical

let batch =
  Workload.Source.of_dist
    (Workload.Service_dist.lognormal ~mean_ns:(ms 20) ~std_ns:(ms 5))
    ~cls:Workload.Request.Best_effort

(* 97% interactive, 3% batch: the batch jobs carry ~40% of the work. *)
let source = Workload.Source.mix [ (0.97, interactive); (0.03, batch) ]
let arrival = Workload.Arrival.poisson ~rate_per_sec:1_000.0

let run name policy mechanism cancel =
  let cfg = Preemptible.Server.default_config ~n_workers:2 ~policy ~mechanism in
  let cfg = { cfg with Preemptible.Server.cancel_after_slo = cancel } in
  let r = Preemptible.Server.run cfg ~arrival ~source ~duration_ns:(ms 2_000) in
  let show cls = function
    | Some (rep : Stat.Summary.report) ->
      Format.printf "  %-12s p50=%9.2fms p99=%9.2fms n=%d@." cls
        (rep.Stat.Summary.p50 /. 1e6) (rep.Stat.Summary.p99 /. 1e6) rep.Stat.Summary.count
    | None -> ()
  in
  Format.printf "%-44s preempt=%d cancelled=%d@." name r.Preemptible.Server.preemptions
    r.Preemptible.Server.cancelled;
  show "interactive" r.Preemptible.Server.lc;
  show "batch" r.Preemptible.Server.be

let () =
  Format.printf
    "DNN serving: 97%% interactive (~0.8ms) + 3%% batch (~20ms) on 2 workers at 1 kRPS@.@.";
  run "run-to-completion" Preemptible.Policy.no_preempt Preemptible.Server.No_mechanism None;
  let preempt_policy =
    (* interactive inferences get a tight slice; batch jobs a laxer one
       so their preemption overhead stays negligible *)
    Preemptible.Policy.with_be_quantum
      (Preemptible.Policy.fcfs_preempt ~quantum_ns:(us 100))
      ~be_quantum_ns:(us 500)
  in
  run "LibPreemptible (100us LC / 500us BE quanta)" preempt_policy
    (Preemptible.Server.Uintr_utimer Utimer.default_config)
    None;
  run "  + cancel doomed requests (>20ms sojourn)" preempt_policy
    (Preemptible.Server.Uintr_utimer Utimer.default_config)
    (Some (ms 20));
  Format.printf
    "@.preemption keeps interactive p99 in sub-ms territory while the 20ms batch\n\
     jobs continue; the batch p99 cost is the slicing overhead@."
