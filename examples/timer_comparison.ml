(* Fig 11 / Fig 12 as a runnable example: how should periodic preemption
   interrupts be delivered to N threads?

     dune exec examples/timer_comparison.exe *)

let us = Engine.Units.us

module Ts = Baselines.Timer_strategies

let () =
  Format.printf "timer interrupt delivery overhead, 100us interval, 1000 rounds (Fig 11)@.@.";
  Format.printf "%-30s" "strategy \\ threads";
  let thread_counts = [ 1; 2; 4; 8; 16; 32 ] in
  List.iter (fun n -> Format.printf "%9d" n) thread_counts;
  Format.printf "@.";
  List.iter
    (fun strategy ->
      Format.printf "%-30s" (Ts.name strategy);
      List.iter
        (fun threads ->
          let r =
            Ts.delivery_overhead strategy ~threads ~interval_ns:(us 100) ~rounds:1000
          in
          Format.printf "%8.2f " r.Ts.mean_overhead_us)
        thread_counts;
      Format.printf "@.")
    Ts.all;
  Format.printf "@.timer precision with 26 threads and background noise (Fig 12)@.@.";
  List.iter
    (fun (src, target) ->
      let r = Ts.precision src ~threads:26 ~target_ns:target ~samples:5000 in
      Format.printf
        "%-13s target=%3dus: observed mean=%7.2fus std=%6.2fus rel.err=%5.1f%%@."
        r.Ts.source (target / 1000) r.Ts.mean_gap_us r.Ts.std_gap_us (100.0 *. r.Ts.rel_error))
    [ (`Kernel_timer, us 100); (`Kernel_timer, us 20); (`Utimer, us 100); (`Utimer, us 20) ];
  Format.printf
    "@.the kernel timer cannot honour a 20us period (floor ~60us); LibUtimer stays ~1%%@."
