(* Algorithm 1 in action: workload C (heavy-tailed bimodal shifting to
   light-tailed exponential mid-run) served with the adaptive time
   quantum controller.  We print the controller's quantum trajectory and
   the per-window SLO violation rate against a static-quantum run — the
   paper's Fig 9.

     dune exec examples/adaptive_quantum.exe *)

let us = Engine.Units.us
let ms = Engine.Units.ms

let duration = ms 600
let slo_ns = us 50

(* Workload C shifts both service-time shape and load mid-run: a
   heavy-tailed phase under high load, then a light-tailed phase under
   low load — the regime where Algorithm 1 first tightens and then
   relaxes the quantum. *)
let arrival =
  Workload.Arrival.piecewise
    [
      (duration / 2, Workload.Arrival.poisson ~rate_per_sec:900_000.0);
      (duration, Workload.Arrival.poisson ~rate_per_sec:200_000.0);
    ]

let source =
  Workload.Source.of_dist
    (Workload.Service_dist.workload_c ~duration_ns:duration)
    ~cls:Workload.Request.Latency_critical

let run name policy =
  let violations = Stat.Timeseries.create ~window_ns:(ms 50) in
  let totals = Stat.Timeseries.create ~window_ns:(ms 50) in
  let quanta = ref [] in
  let probes =
    {
      Preemptible.Server.on_complete =
        (fun ~now ~latency_ns ~cls:_ ->
          Stat.Timeseries.mark totals ~time:now;
          if latency_ns > slo_ns then Stat.Timeseries.mark violations ~time:now);
      on_window =
        (fun snapshot ~quantum_ns ->
          quanta := (snapshot.Preemptible.Stats_window.window_start_ns, quantum_ns) :: !quanta);
      on_tick = ignore;
    }
  in
  let cfg =
    Preemptible.Server.default_config ~n_workers:4 ~policy
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let cfg = { cfg with Preemptible.Server.stats_window_ns = ms 50 } in
  let r = Preemptible.Server.run ~probes cfg ~arrival ~source ~duration_ns:duration in
  Format.printf "@.%s: p99=%.1fus preemptions=%d@." name
    (r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3)
    r.Preemptible.Server.preemptions;
  Format.printf "  window    violations  quantum@.";
  let vmap =
    List.map
      (fun (p : Stat.Timeseries.point) -> (p.Stat.Timeseries.t_start, p.Stat.Timeseries.count))
      (Stat.Timeseries.points violations)
  in
  List.iter
    (fun (p : Stat.Timeseries.point) ->
      let t = p.Stat.Timeseries.t_start in
      let viol = try List.assoc t vmap with Not_found -> 0 in
      let q = try List.assoc t (List.rev !quanta) with Not_found -> 0 in
      Format.printf "  %4.0fms    %5.2f%%      %s@."
        (Engine.Units.to_ms t)
        (100.0 *. float_of_int viol /. float_of_int (max p.Stat.Timeseries.count 1))
        (if q = 0 then "-" else Printf.sprintf "%dus" (q / 1000)))
    (Stat.Timeseries.points totals)

let () =
  Format.printf
    "workload C: heavy-tailed bimodal at 900kRPS for 300ms, then exponential at 200kRPS; \
     SLO = 50us, 4 workers@.";
  (* Static quantum tuned for neither phase. *)
  run "static quantum 40us" (Preemptible.Policy.fcfs_preempt ~quantum_ns:(us 40));
  (* Adaptive controller: starts at 40us, shrinks under the heavy tail,
     relaxes when the light-tailed phase arrives. *)
  let controller =
    Preemptible.Quantum_controller.create
      ~config:
        {
          Preemptible.Quantum_controller.default_config with
          Preemptible.Quantum_controller.k1_ns = us 8;
          k2_ns = us 8;
          k3_ns = us 8;
          t_max_ns = us 60;
          l_high_fraction = 0.6;
          l_low_fraction = 0.2;
        }
      ~max_load_per_s:1_300_000.0 ~initial_quantum_ns:(us 40) ()
  in
  run "adaptive (Algorithm 1)" (Preemptible.Policy.adaptive controller)
