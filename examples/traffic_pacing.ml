(* Sec VII-C use case: traffic shaping.  A pacer emits packets on a
   fixed schedule; fidelity depends entirely on the timer that wakes
   it.  We pace the same 50k pps stream with a kernel timer, LibUtimer,
   and the future hardware comparators.

     dune exec examples/traffic_pacing.exe *)

let run name make_source =
  let sim = Engine.Sim.create () in
  let source, cleanup = make_source sim in
  let sent = ref 0 in
  let pacer =
    Preemptible.Pacer.create sim ~rate_per_sec:50_000.0 ~source
      ~send:(fun ~now:_ -> incr sent)
  in
  Preemptible.Pacer.start pacer;
  Engine.Sim.run_until sim (Engine.Units.ms 200);
  Preemptible.Pacer.stop pacer;
  cleanup ();
  let s = Preemptible.Pacer.stats pacer in
  Format.printf
    "%-22s sends=%6d gap=%7.2fus (target 20.00) std=%6.2fus achieved=%8.0f pps err=%5.1f%%@."
    name s.Preemptible.Pacer.sends s.Preemptible.Pacer.mean_gap_us
    s.Preemptible.Pacer.std_gap_us s.Preemptible.Pacer.achieved_rate_per_s
    (100.0 *. s.Preemptible.Pacer.rate_error)

let () =
  Format.printf "pacing 50k pps (20us spacing) for 200ms with three timer backends@.@.";
  run "kernel timer" (fun sim ->
      let costs = Ksim.Costs.default in
      let signal = Ksim.Signal.create sim costs ~rng:(Engine.Sim.fork_rng sim) in
      let kt = Ksim.Ktimer.create sim costs ~rng:(Engine.Sim.fork_rng sim) ~signal in
      (Preemptible.Pacer.ktimer_source sim kt, fun () -> ()));
  run "LibUtimer" (fun sim ->
      let fabric = Hw.Uintr.create sim Hw.Params.default in
      let ut = Utimer.create sim ~uintr:fabric () in
      Utimer.start ut;
      (Preemptible.Pacer.utimer_source ut ~uintr:fabric, fun () -> Utimer.stop ut));
  run "hw comparator" (fun sim ->
      let fabric = Hw.Uintr.create sim Hw.Params.default in
      let hwt = Hw.Hwtimer.create sim fabric in
      (Preemptible.Pacer.hwtimer_source hwt ~uintr:fabric, fun () -> ()));
  Format.printf
    "@.the kernel timer cannot shape at 20us spacing (floor ~60us -> 1/3 the rate);\n\
     LibUtimer paces within its poll period; the comparator is exact@."
