(* Sec V-C scenario: a latency-critical MICA key-value store time-shares
   worker cores with best-effort zlib compression jobs (98% / 2% mix).

   Scheduling policy #1 — FCFS with preemption at a fixed quantum — is
   expressed directly against the library's Policy API.  We compare
   non-preemptive execution with 30us and 5us preemption intervals, the
   trade-off of Fig 13.

     dune exec examples/kvs_colocation.exe *)

let us = Engine.Units.us
let ms = Engine.Units.ms

let () =
  let mica = Workload.Mica.create () in
  let zlib = Workload.Zlib_be.create () in
  let source =
    Workload.Source.mix
      [ (0.98, Workload.Mica.source mica); (0.02, Workload.Zlib_be.source zlib) ]
  in
  let arrival = Workload.Arrival.poisson ~rate_per_sec:55_000.0 in
  let run name policy mechanism =
    let cfg = Preemptible.Server.default_config ~n_workers:1 ~policy ~mechanism in
    let r = Preemptible.Server.run cfg ~arrival ~source ~duration_ns:(ms 400) in
    let pr cls = function
      | Some (rep : Stat.Summary.report) ->
        Format.printf "  %-3s p50=%8.1fus p99=%9.1fus n=%d@." cls
          (rep.Stat.Summary.p50 /. 1e3) (rep.Stat.Summary.p99 /. 1e3) rep.Stat.Summary.count
      | None -> Format.printf "  %-3s (no requests)@." cls
    in
    Format.printf "%-32s preemptions=%d@." name r.Preemptible.Server.preemptions;
    pr "LC" r.Preemptible.Server.lc;
    pr "BE" r.Preemptible.Server.be;
    r
  in
  Format.printf
    "MICA (LC, ~1us median) + zlib (BE, ~100us median) on one worker at 55 kRPS@.@.";
  let base =
    run "LC-Base: no preemption" Preemptible.Policy.no_preempt
      Preemptible.Server.No_mechanism
  in
  let q30 =
    run "LC-Lib: FCFS-P, quantum 30us"
      (Preemptible.Policy.fcfs_preempt ~quantum_ns:(us 30))
      (Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let q5 =
    run "LC-Lib: FCFS-P, quantum 5us"
      (Preemptible.Policy.fcfs_preempt ~quantum_ns:(us 5))
      (Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let lc_p99 (r : Preemptible.Server.result) =
    match r.Preemptible.Server.lc with Some rep -> rep.Stat.Summary.p99 | None -> nan
  in
  let be_p50 (r : Preemptible.Server.result) =
    match r.Preemptible.Server.be with Some rep -> rep.Stat.Summary.p50 | None -> nan
  in
  Format.printf "@.LC p99 improvement: 30us quantum %.1fx, 5us quantum %.1fx@."
    (lc_p99 base /. lc_p99 q30)
    (lc_p99 base /. lc_p99 q5);
  Format.printf "BE median cost:     30us quantum %.2fx, 5us quantum %.2fx@."
    (be_p50 q30 /. be_p50 base)
    (be_p50 q5 /. be_p50 base);
  Format.printf
    "@.lower preemption intervals buy LC tail latency at the price of BE slowdown (Fig 13)@."
